"""Acceptance gate: incremental Minimum-SR SAT sweep vs per-bound rebuild.

The seed's SAT Minimum-SR pipeline rebuilt the whole Proposition-6
encoding and a cold CDCL solver for every probed cardinality bound.
The incremental pipeline encodes once and sweeps the bound through
guarded cardinality constraints activated by assumption literals on a
single solver, keeping learnt clauses and VSIDS/phase state warm across
bounds.  This gate requires the incremental sweep to be at least
``MIN_SPEEDUP``x faster on the headline workload (optimum sizes are
asserted identical inside the measurement before any timing happens).

The measurement core lives in
:func:`repro.experiments.bench.measure_msr_incremental` — the same
numbers the ``bench-baseline`` CI job and the nightly trend artifact
track.  Shared runners are noisy, so the gate takes the best of up to
``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratio in the GitHub job summary when one is
available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_msr_incremental.py

or through pytest-benchmark for statistics::

    PYTHONPATH=src python -m pytest benchmarks/bench_msr_incremental.py -q
"""

from __future__ import annotations

import os

from repro.abductive.minimum import _minimum_sat_hamming_k1
from repro.datasets import random_boolean_dataset
from repro.experiments.bench import gated_best, measure_msr_incremental
from repro.knn import QueryEngine

MIN_SPEEDUP = 3.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the engine-batch gate).
MAX_ATTEMPTS = 3


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 3x gate."""
    return gated_best(
        measure_msr_incremental, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Incremental Minimum-SR speedup gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); rebuild "
            f"{stats['rebuild_s'] * 1000:.1f} ms, incremental "
            f"{stats['incremental_s'] * 1000:.1f} ms)\n"
        )


def test_msr_incremental_speedup(benchmark, rng):
    """pytest-benchmark entry: incremental sweep timing + the >= 3x gate."""
    data = random_boolean_dataset(rng, 13, 24)
    x = rng.integers(0, 2, size=13).astype(float)
    engine = QueryEngine(data, "hamming")
    benchmark.pedantic(
        lambda: _minimum_sat_hamming_k1(data, x, engine, strategy="linear"),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"the incremental Minimum-SR sweep is only {stats['speedup']:.1f}x faster "
        f"than the per-bound rebuild after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_msr_incremental_matches_rebuild(rng):
    data = random_boolean_dataset(rng, 11, 20)
    engine = QueryEngine(data, "hamming")
    for _ in range(3):
        x = rng.integers(0, 2, size=11).astype(float)
        inc = _minimum_sat_hamming_k1(data, x, engine, incremental=True)
        reb = _minimum_sat_hamming_k1(data, x, engine, incremental=False)
        assert inc.size == reb.size


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"Minimum-SR SAT sweep on {stats['queries']} queries x "
        f"{stats['train']} train points x {stats['dim']} dims (hamming, k=1):\n"
        f"  rebuild per bound : {stats['rebuild_s'] * 1000:9.1f} ms\n"
        f"  incremental       : {stats['incremental_s'] * 1000:9.1f} ms\n"
        f"  speedup           : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s))"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate after {stats['attempts']} attempts"
        )
