"""Figure 5b: SAT runtimes for Hamming counterfactuals.

Paper workload: same random-boolean counterfactual task solved with the
guarded-cardinality SAT encoding (cardinality-cadical in the paper, our
CDCL-with-klauses here), N in 300..900.  Scaled grid: n in {20..60},
N in {20, 40, 60}.  Expected shape: SAT scales worse in N than the IQP
pipeline (the paper's Figure 5 shows the same asymmetry, with the
caveat that Gurobi ran 8 threads vs single-threaded SAT).
"""

from __future__ import annotations

import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import random_boolean_dataset

DIMENSIONS = [20, 40, 60]
SIZES = [20, 40, 60]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("n", DIMENSIONS)
def test_fig5b_sat_counterfactual(benchmark, rng, n, size):
    data = random_boolean_dataset(rng, n, size)
    x = rng.integers(0, 2, size=n).astype(float)

    def task():
        return closest_counterfactual(
            data, 1, "hamming", x, method="hamming-sat", strategy="linear"
        )

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.found
    assert result.distance >= 1
