"""WAL overhead report: durable vs in-memory mutation latency.

Unlike the other headline benchmarks this one **records, never gates**:
the fsync'd write-ahead log is a correctness feature (an acknowledged
mutation survives ``kill -9``, see ``tests/test_crash_recovery.py``),
so "faster" is not the claim — the claim is that the cost is known.
The report measures the same fixed mutation stream three ways:

* in-memory ``ExplanationService`` (no ``state_dir``) — the baseline;
* durable service (WAL fsync per batch, snapshot every 16 versions);
* restore-on-boot — how long a cold start over the resulting state
  directory takes to replay back to the final ``<fp>@vN``.

The measured overhead factor and absolute per-batch costs go to stdout
and (in CI) the GitHub job summary, so the trend is visible without
failing anyone's PR.  fsync latency dominates and is storage-bound:
laptop NVMe, CI runners, and networked volumes will disagree — compare
trends within one environment only, and see ``docs/operations.md`` for
the tuning knobs (``--snapshot-every``, batch coalescing).

Run directly for the report::

    PYTHONPATH=src python benchmarks/bench_durability.py

or through pytest for the invariants (durable answers == in-memory
answers, restore is exact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.serve import ExplanationService

SEED = 20250601
TRAIN = 512
DIM = 16
BATCHES = 60
BATCH_POINTS = 4
SNAPSHOT_EVERY = 16


def _history(rng: np.random.Generator):
    """The fixed mutation stream every variant replays."""
    from repro.knn import Dataset

    data = Dataset(
        rng.normal(size=(TRAIN // 2, DIM)), rng.normal(size=(TRAIN // 2, DIM))
    )
    batches = [
        (rng.normal(size=(BATCH_POINTS, DIM)), [1, -1] * (BATCH_POINTS // 2))
        for _ in range(BATCHES)
    ]
    return data, batches


def _run_stream(service: ExplanationService, data, batches) -> tuple[str, float]:
    """Apply the stream; return (final fingerprint, mutation seconds)."""
    fp = service.add_dataset(data)
    start = perf_counter()
    for points, labels in batches:
        service.add_points(fp, points, labels)
    return service.fingerprints()[0], perf_counter() - start


def measure_durability(seed: int = SEED) -> dict:
    """One full measurement: in-memory vs durable vs restore-on-boot."""
    rng = np.random.default_rng(seed)
    data, batches = _history(rng)

    memory = ExplanationService()
    memory_fp, memory_s = _run_stream(memory, data, batches)
    memory.close()

    state = Path(tempfile.mkdtemp(prefix="repro-bench-wal-"))
    try:
        durable = ExplanationService(state_dir=state, snapshot_every=SNAPSHOT_EVERY)
        durable_fp, durable_s = _run_stream(durable, data, batches)
        wal_stats = durable.stats()["durability"]
        durable.close()

        boot = perf_counter()
        revived = ExplanationService(state_dir=state, snapshot_every=SNAPSHOT_EVERY)
        restore_s = perf_counter() - boot
        restored_fp = revived.fingerprints()[0]
        revived.close()
    finally:
        shutil.rmtree(state, ignore_errors=True)

    assert memory_fp == durable_fp == restored_fp, "durability changed the lineage"
    return {
        "batches": BATCHES,
        "batch_points": BATCH_POINTS,
        "memory_s": memory_s,
        "durable_s": durable_s,
        "restore_s": restore_s,
        "overhead": durable_s / memory_s if memory_s > 0 else float("inf"),
        "fsync_s": wal_stats["fsync_s"],
        "appends": wal_stats["appends"],
        "snapshots": wal_stats["snapshots"],
    }


def _write_job_summary(stats: dict) -> None:
    """Append the overhead report to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a") as handle:
        handle.write(
            "### WAL overhead (records, never gates)\n\n"
            f"durable mutations cost **{stats['overhead']:.1f}x** the in-memory "
            f"path ({stats['durable_s'] * 1000:.1f} ms vs "
            f"{stats['memory_s'] * 1000:.1f} ms for {stats['batches']} batches; "
            f"fsync total {stats['fsync_s'] * 1000:.1f} ms, "
            f"{stats['snapshots']} snapshot(s)); restore-on-boot "
            f"{stats['restore_s'] * 1000:.1f} ms\n"
        )


def test_durable_stream_preserves_lineage_and_reports_overhead():
    """The report's precondition: durability never changes the lineage."""
    stats = measure_durability()
    assert stats["appends"] == BATCHES + 1  # register record + one per batch
    assert stats["snapshots"] == BATCHES // SNAPSHOT_EVERY
    assert stats["overhead"] > 0


if __name__ == "__main__":
    stats = measure_durability()
    _write_job_summary(stats)
    print(
        f"Durability overhead over {stats['batches']} mutation batches of "
        f"{stats['batch_points']} points ({TRAIN} train x {DIM} dims):\n"
        f"  in-memory mutations  : {stats['memory_s'] * 1000:9.1f} ms\n"
        f"  durable (WAL+snap)   : {stats['durable_s'] * 1000:9.1f} ms "
        f"({stats['overhead']:.1f}x, fsync {stats['fsync_s'] * 1000:.1f} ms, "
        f"{stats['snapshots']} snapshot(s))\n"
        f"  restore-on-boot      : {stats['restore_s'] * 1000:9.1f} ms\n"
        "records only — this benchmark never fails a build."
    )
