"""Acceptance gate: the certified IVF backend vs the dense Gram kernel.

The paper leans on "a library for fast NN-classification such as FAISS"
for its million-point experiments; the repo's equivalent is
:class:`~repro.neighbors.IVFIndex` — FAISS's inverted-file probe plan
made *exact* by a triangle-inequality certificate, falling back to a
vectorized full scan whenever the certificate cannot fire.  On
clustered data (the regime inverted files exist for) each query
certifies after scanning a couple of buckets, so the engine answers the
same batched queries many times faster than the dense kernels while
staying bit-for-bit identical: the measurement asserts labels, margins
and radii against the dense backend before any timing happens.

This gate runs the workload at a CI-sized ``train`` (the
:func:`~repro.experiments.bench.measure_million_point` default) and
requires at least ``MIN_SPEEDUP``x; the nightly workflow re-runs it at
the full paper scale with ``repro bench --train 1000000 --workloads
million_point`` (recorded in the trend artifact, not gated — full-size
wall-clock belongs in a trend line, not a pass/fail check on shared
runners).

The measurement core lives in
:func:`repro.experiments.bench.measure_million_point` — the same
numbers the ``bench-baseline`` CI job and the nightly trend artifact
track.  Shared runners are noisy, so the gate takes the best of up to
``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratio in the GitHub job summary when one is
available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_million_point.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_million_point.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.bench import (
    _clustered_integer_points,
    gated_best,
    measure_million_point,
)
from repro.knn import Dataset, QueryEngine
from repro.neighbors import IVFIndex, build_index
from repro.neighbors.base import IVF_AUTO_MIN_POINTS

#: the CI-scale IVF-over-dense floor.  Measured ~18x at the default
#: 120k x 64 workload on a single development core; 6x leaves room for
#: noisy shared runners while still proving the certificate is firing
#: (a fallback-dominated run measures ~1x).
MIN_SPEEDUP = 6.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the gate threshold."""
    return gated_best(
        measure_million_point, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Million-point gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); {stats['train']} points x "
            f"{stats['dim']} dims, {stats['certified']} certified / "
            f"{stats['fallback']} fallback probes)\n"
        )


def test_million_point_speedup():
    """The certified-IVF-over-dense gate at CI scale (best-of-3)."""
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"the certified IVF backend is only {stats['speedup']:.1f}x faster "
        f"than the dense kernels after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x; {stats['fallback']} certificate "
        f"fallbacks suggest the quantizer stopped finding the clusters)"
    )


def test_million_point_parity_small(rng):
    """The exactness contract the speedup rides on, at a quick scale.

    Labels, margins and radii of the IVF engine match the dense engine
    bit for bit on clustered integer data — the same assertion
    ``measure_million_point`` makes before timing, cheap enough to run
    on every pytest invocation of this file.
    """
    centers, points = _clustered_integer_points(rng, 3_000, 16, n_clusters=24)
    labels = rng.integers(0, 2, size=3_000).astype(bool)
    queries = centers[rng.integers(0, 24, size=40)] + rng.integers(
        -2, 3, size=(40, 16)
    )
    data = Dataset(points[labels], points[~labels])
    dense = QueryEngine(data, "l2", backend="dense")
    ivf = QueryEngine(data, "l2", backend="ivf")
    np.testing.assert_array_equal(
        dense.classify_batch(queries, 3), ivf.classify_batch(queries, 3)
    )
    np.testing.assert_array_equal(
        dense.margins_batch(queries, 3), ivf.margins_batch(queries, 3)
    )
    np.testing.assert_array_equal(
        np.column_stack(dense.radii_batch(queries, 3)),
        np.column_stack(ivf.radii_batch(queries, 3)),
    )


def test_auto_rule_prefers_ivf_at_scale():
    """``build_index`` reaches for IVF above the measured crossover."""
    rng = np.random.default_rng(20250601)
    small = rng.integers(0, 5, size=(256, 16)).astype(float)
    assert not isinstance(build_index(small, "l2"), IVFIndex)
    assert IVF_AUTO_MIN_POINTS >= 4_096  # the crossover is a large-n rule
    large = rng.integers(0, 5, size=(IVF_AUTO_MIN_POINTS, 16)).astype(float)
    assert isinstance(build_index(large, "l2"), IVFIndex)


if __name__ == "__main__":
    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"Million-point workload: {stats['train']} train points x "
        f"{stats['dim']} dims in {stats['clusters']} clusters "
        f"({stats['queries']} queries, l2, k={stats['k']}):\n"
        f"  dense Gram kernels   : {stats['dense_s'] * 1000:9.1f} ms\n"
        f"  certified IVF        : {stats['ivf_s'] * 1000:9.1f} ms\n"
        f"  speedup              : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s); "
        f"{stats['certified']} certified / {stats['fallback']} fallback)"
    )
    raise SystemExit(0 if stats["speedup"] >= MIN_SPEEDUP else 1)
