"""Ablation: explanation cost on full vs thinned training sets.

The paper's final remarks suggest training-set thinning "might serve to
speed up the computation of local explanations".  This ablation
measures the l2 counterfactual pipeline on a blob dataset before and
after the exact relevant-points reduction (which preserves the
classifier function, hence the explanations).  Expected shape: the
thinned run is faster roughly in proportion to the points removed,
with identical counterfactual infima.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import gaussian_blobs
from repro.knn.thinning import relevant_points_1nn


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    data = gaussian_blobs(rng, 2, 25, separation=4.0)
    thin = relevant_points_1nn(data)
    queries = rng.normal(size=(10, 2))
    return data, thin, queries


@pytest.mark.parametrize("variant", ["full", "thinned"])
def test_counterfactuals_after_thinning(benchmark, workload, variant):
    full, thin, queries = workload
    data = full if variant == "full" else thin

    def task():
        return [closest_counterfactual(data, 1, "l2", q).infimum for q in queries]

    infima = benchmark(task)
    assert all(np.isfinite(v) for v in infima)
