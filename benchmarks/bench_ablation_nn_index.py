"""Ablation: NN-index backend inside the Prop. 4 / Prop. 6 workloads.

The paper remarks that "the use of a library for fast NN-classification
such as FAISS was key for performance" in the minimal-SR pipeline.
This ablation compares our exact backends — vectorized brute force, the
KD-tree, and the bit-packed popcount index — at low and high dimension,
and at the engine level where ``backend=`` selects the index strategy.
Expected shape: the tree wins only in low dimension (brute force is the
default in the paper's regime of hundreds of features — the classic
curse-of-dimensionality behavior), while the bit-packed index wins
outright on binary Hamming data, which is why ``backend="auto"`` picks
it there.

Acceptance gate (run directly)::

    PYTHONPATH=src python benchmarks/bench_ablation_nn_index.py

asserts that ``backend="bitpack"`` classification is bit-identical to
``backend="dense"`` and at least ``MIN_BITPACK_SPEEDUP``x faster on a
5000 x 128 binary dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.bench import gated_best, measure_hamming_bitpack
from repro.knn import Dataset, QueryEngine
from repro.neighbors import BitPackedHammingIndex, BruteForceIndex, KDTreeIndex

CASES = [
    ("low-dim", 3, 4000),
    ("high-dim", 64, 2000),
]

#: acceptance floor for the bit-packed backend on the 5000x128 binary
#: workload (typically 4-6x: popcount on uint64 words vs a BLAS Gram
#: matmul plus float64 partial sorts).
MIN_BITPACK_SPEEDUP = 3.0
#: full re-measurements allowed before the gate declares failure.
MAX_ATTEMPTS = 3


@pytest.mark.parametrize("label, dim, count", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("backend", ["brute", "kdtree"])
def test_nn_index_backend(benchmark, rng, label, dim, count, backend):
    points = rng.normal(size=(count, dim))
    queries = rng.normal(size=(50, dim))
    cls = BruteForceIndex if backend == "brute" else KDTreeIndex
    index = cls(points, "l2")

    def task():
        total = 0
        for q in queries:
            _, idx = index.query(q, k=5)
            total += int(idx[0])
        return total

    benchmark(task)


@pytest.mark.parametrize("backend", ["brute", "bitpack"])
def test_nn_index_hamming_backend(benchmark, rng, backend):
    points = rng.integers(0, 2, size=(2000, 128)).astype(float)
    queries = rng.integers(0, 2, size=(50, 128)).astype(float)
    cls = BruteForceIndex if backend == "brute" else BitPackedHammingIndex
    index = cls(points, "hamming")

    def task():
        total = 0
        for q in queries:
            _, idx = index.query(q, k=5)
            total += int(idx[0])
        return total

    benchmark(task)


@pytest.mark.parametrize("backend", ["dense", "bitpack"])
def test_engine_backend_hamming(benchmark, rng, backend):
    points = rng.integers(0, 2, size=(5000, 128)).astype(float)
    labels = rng.integers(0, 2, size=5000).astype(bool)
    data = Dataset(points[labels], points[~labels])
    queries = rng.integers(0, 2, size=(200, 128)).astype(float)
    engine = QueryEngine(data, "hamming", backend=backend)
    benchmark(lambda: engine.classify_batch(queries, 3))


def gated_bitpack_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* dense-vs-bitpack measurement against the 3x gate.

    Each measurement asserts bit-identical classifications before any
    timing (see :func:`measure_hamming_bitpack`).
    """
    return gated_best(
        measure_hamming_bitpack,
        threshold=MIN_BITPACK_SPEEDUP,
        attempts=attempts,
        seed=seed,
    )


def test_bitpack_bit_identical_and_faster(rng):
    """The PR acceptance gate: exactness always, speedup best-of-3."""
    # Exactness on a fresh randomized dataset (beyond the fixed-seed
    # workload the timing uses), radii included.
    points = rng.integers(0, 2, size=(800, 96)).astype(float)
    labels = rng.integers(0, 2, size=800).astype(bool)
    data = Dataset(points[labels], points[~labels])
    queries = rng.integers(0, 2, size=(60, 96)).astype(float)
    dense = QueryEngine(data, "hamming", backend="dense")
    bitpack = QueryEngine(data, "hamming", backend="bitpack")
    for k in (1, 3, 5):
        np.testing.assert_array_equal(
            dense.classify_batch(queries, k), bitpack.classify_batch(queries, k)
        )
        for side_dense, side_bit in zip(
            dense.radii_batch(queries, k), bitpack.radii_batch(queries, k)
        ):
            np.testing.assert_array_equal(side_dense, side_bit)
    stats = gated_bitpack_speedup()
    assert stats["speedup"] >= MIN_BITPACK_SPEEDUP, (
        f"bitpack classification is only {stats['speedup']:.1f}x faster than dense "
        f"after {stats['attempts']} attempts (required: {MIN_BITPACK_SPEEDUP:.0f}x)"
    )


if __name__ == "__main__":
    import sys

    stats = gated_bitpack_speedup()
    print(
        f"Hamming classify_batch on {stats['queries']} queries x "
        f"{stats['train']} train points x {stats['dim']} dims (k=3, binary):\n"
        f"  dense Gram kernel : {stats['dense_s'] * 1000:9.1f} ms\n"
        f"  bitpack popcount  : {stats['bitpack_s'] * 1000:9.1f} ms\n"
        f"  speedup           : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s); bit-identical)"
    )
    if stats["speedup"] < MIN_BITPACK_SPEEDUP:
        sys.exit(
            f"FAIL: bitpack speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_BITPACK_SPEEDUP:.0f}x acceptance gate"
        )
