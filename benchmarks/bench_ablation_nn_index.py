"""Ablation: NN-index backend inside the Prop. 4 / Prop. 6 workloads.

The paper remarks that "the use of a library for fast NN-classification
such as FAISS was key for performance" in the minimal-SR pipeline.
This ablation compares our two exact backends — vectorized brute force
and the KD-tree — at low and high dimension.  Expected shape: the tree
wins only in low dimension; in the paper's regime (hundreds of
features) brute force wins, which is why it is the default there
(`build_index`'s auto rule).
"""

from __future__ import annotations

import pytest

from repro.neighbors import BruteForceIndex, KDTreeIndex

CASES = [
    ("low-dim", 3, 4000),
    ("high-dim", 64, 2000),
]


@pytest.mark.parametrize("label, dim, count", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("backend", ["brute", "kdtree"])
def test_nn_index_backend(benchmark, rng, label, dim, count, backend):
    points = rng.normal(size=(count, dim))
    queries = rng.normal(size=(50, dim))
    cls = BruteForceIndex if backend == "brute" else KDTreeIndex
    index = cls(points, "l2")

    def task():
        total = 0
        for q in queries:
            _, idx = index.query(q, k=5)
            total += int(idx[0])
        return total

    benchmark(task)
