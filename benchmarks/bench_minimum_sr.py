"""Extension experiment: exact Minimum-SR pipelines (MILP vs SAT vs brute).

The paper's experiments stop at *minimal* sufficient reasons (the
polynomial case); this bench extends Section 9 to the NP-complete
*minimum* problem on the discrete k = 1 cell, comparing the two exact
encodings of `repro.abductive.minimum` against the brute-force
baseline.  Expected shape: brute force explodes with n while both
solver pipelines scale; MILP leads SAT for the same engine-constant
reasons as in Figure 5.
"""

from __future__ import annotations

import pytest

from repro.abductive import minimum_sufficient_reason
from repro.datasets import random_boolean_dataset

GRID = [(8, 12), (12, 16)]


@pytest.mark.parametrize("method", ["milp", "sat", "brute"])
@pytest.mark.parametrize("n,size", GRID, ids=[f"n{n}-N{s}" for n, s in GRID])
def test_minimum_sr_pipeline(benchmark, rng, method, n, size):
    data = random_boolean_dataset(rng, n, size)
    x = rng.integers(0, 2, size=n).astype(float)

    def task():
        return minimum_sufficient_reason(data, 1, "hamming", x, method=method)

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.size <= n
