"""Figure 6a: minimal sufficient reason (l1) runtimes on digit images.

Paper workload: MNIST rescaled to side lengths 12..28, training sizes
N in 250..1000, minimal sufficient reason under l1 via the Proposition 4
checker inside the Proposition 2 greedy, with FAISS for the NN queries.
Here: synthetic digit images (4 vs 9), sides {6, 8, 10}, N in {16, 24,
32}, brute-force numpy NN.  Expected shape: steep growth in the side
length (the greedy performs one Check-SR per pixel, each scanning the
dataset) and linear-ish growth in N — matching the paper's Figure 6a.
"""

from __future__ import annotations

import pytest

from repro.abductive import minimal_sufficient_reason
from repro.datasets import DigitImages

SIDES = [6, 8, 10]
SIZES = [16, 24, 32]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("side", SIDES)
def test_fig6a_minimal_sr_l1(benchmark, rng, side, size):
    images = DigitImages.generate(rng, digits=(4, 9), count_per_digit=size // 2, side=side)
    data = images.to_dataset(positive_digit=4)
    query = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=side)
    x = query.flattened()[0]

    def task():
        return minimal_sufficient_reason(data, 1, "l1", x)

    X = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert len(X) <= side * side
