"""Ablation: MILP engine — pure-Python branch & bound vs HiGHS branch & cut.

DESIGN.md substitutes Gurobi with two engines behind the same model
layer: scipy's HiGHS (`engine="scipy"`, the default) and a from-scratch
best-first branch & bound over HiGHS LP relaxations (`engine="bnb"`).
Both are exact; this ablation quantifies the gap on the Figure 5a
workload.  Expected shape: HiGHS wins by a wide constant factor, and
the gap widens with N — justifying the default.
"""

from __future__ import annotations

import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import random_boolean_dataset


@pytest.mark.parametrize("engine", ["scipy", "bnb"])
@pytest.mark.parametrize("size", [10, 20])
def test_milp_engine(benchmark, rng, engine, size):
    data = random_boolean_dataset(rng, 15, size)
    x = rng.integers(0, 2, size=15).astype(float)

    def task():
        return closest_counterfactual(
            data, 1, "hamming", x, method="hamming-milp", engine=engine
        )

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.found
