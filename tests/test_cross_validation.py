"""Last-line cross-validation: independent pipelines must agree."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counterfactual import closest_counterfactual
from repro.knn import KNNClassifier
from repro.knn.thinning import condense

from .helpers import random_discrete_dataset


class TestFormulationAgreement:
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 6))
    @settings(max_examples=20)
    def test_guarded_vs_enumerated_milp_k1(self, seed, n):
        """The paper's single guarded model and the per-witness-pair
        enumeration are different MILPs for the same optimum."""
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, 3, 3)
        x = rng.integers(0, 2, size=n).astype(float)
        guarded = closest_counterfactual(
            data, 1, "hamming", x, method="hamming-milp", formulation="guarded"
        )
        enumerated = closest_counterfactual(
            data, 1, "hamming", x, method="hamming-milp", formulation="enumerated"
        )
        assert guarded.found == enumerated.found
        if guarded.found:
            assert guarded.distance == enumerated.distance

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_milp_engines_agree_on_counterfactuals(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 2, 2)
        x = rng.integers(0, 2, size=5).astype(float)
        a = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp", engine="scipy")
        b = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp", engine="bnb")
        assert a.found == b.found
        if a.found:
            assert a.distance == b.distance


class TestCondenseK3:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=10)
    def test_training_set_consistency_k3(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 4, 5, 5)
        thin = condense(data, k=3, metric="hamming")
        if len(thin) < 3:
            return  # degenerate shrink below k; nothing to check
        full = KNNClassifier(data, k=3, metric="hamming")
        reduced = KNNClassifier(thin, k=3, metric="hamming")
        points, _ = data.all_points()
        for p in points:
            assert full.classify(p) == reduced.classify(p)


class TestInfimumInvariants:
    @given(seed=st.integers(0, 100_000), k=st.sampled_from([1, 3]))
    @settings(max_examples=20)
    def test_infimum_never_exceeds_distance(self, seed, k):
        from repro.datasets import gaussian_blobs

        rng = np.random.default_rng(seed)
        data = gaussian_blobs(rng, 2, 4, separation=2.0)
        x = rng.normal(size=2)
        result = closest_counterfactual(data, k, "l2", x)
        assert result.found
        assert result.infimum <= result.distance + 1e-9
        assert result.distance <= result.infimum * (1 + 1e-4) + 1e-6
