"""Tests for repro.knn.Dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.knn import Dataset


class TestConstruction:
    def test_basic(self):
        d = Dataset([[0, 0], [1, 1]], [[2, 2]])
        assert d.dimension == 2
        assert d.n_positive == 2
        assert d.n_negative == 1
        assert len(d) == 3

    def test_empty_positive_side(self):
        d = Dataset([], [[1, 2, 3]])
        assert d.positives.shape == (0, 3)
        assert d.n_positive == 0

    def test_empty_negative_side(self):
        d = Dataset([[1, 2]], [])
        assert d.negatives.shape == (0, 2)

    def test_both_empty_rejected(self):
        with pytest.raises(ValidationError):
            Dataset([], [])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Dataset([[1, 2]], [[1, 2, 3]])

    def test_discrete_validation(self):
        Dataset([[0, 1]], [[1, 0]], discrete=True)
        with pytest.raises(ValidationError):
            Dataset([[0, 0.5]], [[1, 0]], discrete=True)

    def test_rows_are_read_only(self):
        d = Dataset([[0, 0]], [[1, 1]])
        with pytest.raises(ValueError):
            d.positives[0, 0] = 9.0

    def test_from_labeled(self):
        pts = [[0, 0], [1, 1], [2, 2]]
        d = Dataset.from_labeled(pts, [1, 0, 1])
        assert d.n_positive == 2
        assert d.n_negative == 1
        np.testing.assert_array_equal(d.negatives, [[1, 1]])

    def test_from_labeled_length_mismatch(self):
        with pytest.raises(ValidationError):
            Dataset.from_labeled([[0, 0]], [1, 0])


class TestMultiplicities:
    def test_counts(self):
        d = Dataset(
            [[0, 0]],
            [[1, 1]],
            positive_multiplicities=[3],
            negative_multiplicities=[2],
        )
        assert d.n_positive == 3
        assert d.n_negative == 2
        assert d.has_multiplicities

    def test_expanded(self):
        d = Dataset([[0.0]], [[1.0]], positive_multiplicities=[2])
        e = d.expanded()
        assert e.positives.shape == (2, 1)
        assert not e.has_multiplicities

    def test_expanded_is_identity_without_multiplicities(self):
        d = Dataset([[0.0]], [[1.0]])
        assert d.expanded() is d

    def test_invalid_multiplicity_rejected(self):
        with pytest.raises(ValidationError):
            Dataset([[0.0]], [[1.0]], positive_multiplicities=[0])
        with pytest.raises(ValidationError):
            Dataset([[0.0]], [[1.0]], positive_multiplicities=[1, 1])


class TestDerivedForms:
    def test_all_points(self):
        d = Dataset([[0.0]], [[1.0]], negative_multiplicities=[2])
        pts, labels = d.all_points()
        assert pts.shape == (3, 1)
        assert labels.sum() == 1

    def test_swapped(self):
        d = Dataset([[0, 0]], [[1, 1], [2, 2]])
        s = d.swapped()
        assert s.n_positive == 2
        assert s.n_negative == 1
        np.testing.assert_array_equal(s.negatives, d.positives)

    def test_restrict_dims(self):
        d = Dataset([[1, 2, 3]], [[4, 5, 6]])
        r = d.restrict_dims([2, 0])
        np.testing.assert_array_equal(r.positives, [[3, 1]])
        np.testing.assert_array_equal(r.negatives, [[6, 4]])
