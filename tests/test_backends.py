"""Backend parity suite: every index backend computes the same classifier.

The :class:`~repro.knn.QueryEngine` contract is that ``backend=`` is a
pure performance decision: ``"dense"``, ``"kdtree"``, ``"bitpack"`` and ``"ivf"``
must return identical labels, radii and margins (``"ivf"`` included:
its certificate makes the inverted-file plan exact).  On integer-valued
data (where the paper's exact tie-breaking semantics live — including
the optimistic ties of Proposition 1) agreement is bit for bit; on
general real data under the KD-tree backend the surrogates may differ
by kernel roundoff, so radii are compared to tolerance and labels
outright.

Also covers the backend auto rule, validation, engine pickling, the
process-pool sharded batch path (:meth:`QueryEngine.map_shards`), and
``run_sweep(workers=N)``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.knn import Dataset, KNNClassifier, QueryEngine
from repro.knn.engine import BACKENDS
from repro.experiments.runner import run_sweep

from .helpers import random_continuous_dataset, random_discrete_dataset

LP_METRICS = ["l1", "l2", "lp:3", "linf"]
LP_BACKENDS = ["dense", "kdtree", "ivf"]
HAMMING_BACKENDS = ["dense", "kdtree", "bitpack", "ivf"]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _hamming_case(seed: int, *, q: int = 10):
    rng = _rng(seed)
    n = int(rng.integers(1, 9))
    data = random_discrete_dataset(rng, n, int(rng.integers(1, 8)), int(rng.integers(1, 8)))
    queries = rng.integers(0, 2, size=(q, n)).astype(float)
    return data, queries


def _lp_case(seed: int, *, integer: bool, q: int = 10):
    rng = _rng(seed)
    n = int(rng.integers(1, 5))
    data = random_continuous_dataset(
        rng, n, int(rng.integers(1, 8)), int(rng.integers(1, 8)), integer=integer
    )
    queries = (
        rng.integers(-4, 5, size=(q, n)).astype(float)
        if integer
        else rng.normal(size=(q, n))
    )
    return data, queries


def _assert_bitwise_parity(reference: QueryEngine, other: QueryEngine, queries, k: int):
    np.testing.assert_array_equal(
        reference.classify_batch(queries, k), other.classify_batch(queries, k)
    )
    np.testing.assert_array_equal(
        reference.margins_batch(queries, k), other.margins_batch(queries, k)
    )
    for ref_side, other_side in zip(
        reference.radii_batch(queries, k), other.radii_batch(queries, k)
    ):
        np.testing.assert_array_equal(ref_side, other_side)


class TestHammingParity:
    @pytest.mark.parametrize("backend", HAMMING_BACKENDS)
    @pytest.mark.parametrize("k", [1, 3, 5])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_identical_to_dense(self, backend, k, seed):
        data, queries = _hamming_case(seed)
        if len(data) < k:
            return
        dense = QueryEngine(data, "hamming", backend="dense")
        other = QueryEngine(data, "hamming", backend=backend)
        assert other.backend == backend
        _assert_bitwise_parity(dense, other, queries, k)

    @pytest.mark.parametrize("backend", ["kdtree", "bitpack", "ivf"])
    def test_powers_matrix_bit_identical(self, backend):
        data, queries = _hamming_case(99)
        dense = QueryEngine(data, "hamming", backend="dense")
        other = QueryEngine(data, "hamming", backend=backend)
        np.testing.assert_array_equal(
            dense.powers_matrix(queries), other.powers_matrix(queries)
        )

    def test_bitpack_nonbinary_queries_fall_back(self, rng):
        data, _ = _hamming_case(7)
        dense = QueryEngine(data, "hamming", backend="dense")
        bitpack = QueryEngine(data, "hamming", backend="bitpack")
        queries = rng.normal(size=(6, data.dimension))
        np.testing.assert_allclose(
            dense.powers_matrix(queries), bitpack.powers_matrix(queries)
        )
        np.testing.assert_array_equal(
            dense.classify_batch(queries, 1), bitpack.classify_batch(queries, 1)
        )


class TestLpParity:
    @pytest.mark.parametrize("backend", ["kdtree", "ivf"])
    @pytest.mark.parametrize("metric", LP_METRICS)
    @pytest.mark.parametrize("k", [1, 3])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_identical_on_integer_data(self, backend, metric, k, seed):
        data, queries = _lp_case(seed, integer=True)
        if len(data) < k:
            return
        dense = QueryEngine(data, metric, backend="dense")
        other = QueryEngine(data, metric, backend=backend)
        _assert_bitwise_parity(dense, other, queries, k)

    @pytest.mark.parametrize("backend", ["kdtree", "ivf"])
    @pytest.mark.parametrize("metric", LP_METRICS)
    @pytest.mark.parametrize("k", [1, 3])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_labels_match_on_real_data(self, backend, metric, k, seed):
        data, queries = _lp_case(seed, integer=False)
        if len(data) < k:
            return
        dense = QueryEngine(data, metric, backend="dense")
        other = QueryEngine(data, metric, backend=backend)
        np.testing.assert_array_equal(
            dense.classify_batch(queries, k), other.classify_batch(queries, k)
        )
        for dense_side, other_side in zip(
            dense.radii_batch(queries, k), other.radii_batch(queries, k)
        ):
            np.testing.assert_allclose(dense_side, other_side, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("k", [1, 3, 5])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_multiplicities(self, k, seed):
        rng = _rng(seed)
        n = int(rng.integers(1, 4))
        pos = rng.integers(-3, 4, size=(int(rng.integers(1, 5)), n)).astype(float)
        neg = rng.integers(-3, 4, size=(int(rng.integers(1, 5)), n)).astype(float)
        data = Dataset(
            pos,
            neg,
            positive_multiplicities=rng.integers(1, 4, size=pos.shape[0]),
            negative_multiplicities=rng.integers(1, 4, size=neg.shape[0]),
        )
        if len(data) < k:
            return
        queries = rng.integers(-3, 4, size=(8, n)).astype(float)
        dense = QueryEngine(data, "l2", backend="dense")
        for backend in ("kdtree", "ivf"):
            _assert_bitwise_parity(
                dense, QueryEngine(data, "l2", backend=backend), queries, k
            )


class TestProposition1Ties:
    """The optimistic tie rule survives every backend, bit for bit."""

    def test_equidistant_tie_classifies_positive_hamming(self):
        # x = 00 sits at Hamming distance 1 from the positive 01 and the
        # negative 10: r+ == r- == 1, the optimistic rule says f(x) = 1.
        data = Dataset([[0.0, 1.0]], [[1.0, 0.0]])
        x = [[0.0, 0.0]]
        for backend in HAMMING_BACKENDS:
            engine = QueryEngine(data, "hamming", backend=backend)
            assert engine.classify_batch(x, 1)[0] == 1, backend
            assert engine.margins_batch(x, 1)[0] == 0.0, backend

    @pytest.mark.parametrize("metric", LP_METRICS)
    def test_equidistant_tie_classifies_positive_lp(self, metric):
        data = Dataset([[1.0, 0.0]], [[-1.0, 0.0]])
        x = [[0.0, 5.0]]
        for backend in LP_BACKENDS:
            engine = QueryEngine(data, metric, backend=backend)
            assert engine.classify_batch(x, 1)[0] == 1, (metric, backend)
            assert engine.margins_batch(x, 1)[0] == 0.0, (metric, backend)

    def test_tie_with_multiplicities(self):
        # Two copies of one positive at distance 1 vs two copies of one
        # negative at distance 1: with k=3 both sides reach majority
        # (need=2) at radius 1 — still a tie, still positive.
        data = Dataset(
            [[0.0, 1.0]],
            [[1.0, 0.0]],
            positive_multiplicities=[2],
            negative_multiplicities=[2],
        )
        x = [[0.0, 0.0]]
        for backend in HAMMING_BACKENDS:
            engine = QueryEngine(data, "hamming", backend=backend)
            r_pos, r_neg = engine.radii_batch(x, 3)
            assert r_pos[0] == r_neg[0]
            assert engine.classify_batch(x, 3)[0] == 1, backend

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_randomized_integer_grids_force_ties(self, seed):
        # Tiny integer grids make exact cross-class ties common; every
        # backend must break them identically.
        rng = _rng(seed)
        n = int(rng.integers(1, 3))
        pos = rng.integers(0, 2, size=(int(rng.integers(1, 5)), n)).astype(float)
        neg = rng.integers(0, 2, size=(int(rng.integers(1, 5)), n)).astype(float)
        data = Dataset(pos, neg)
        queries = rng.integers(0, 2, size=(6, n)).astype(float)
        dense = QueryEngine(data, "hamming", backend="dense")
        for backend in ("kdtree", "bitpack", "ivf"):
            _assert_bitwise_parity(
                dense, QueryEngine(data, "hamming", backend=backend), queries, 1
            )


class TestBackendSelection:
    def test_auto_picks_bitpack_for_binary_hamming(self):
        data = random_discrete_dataset(_rng(0), 6, 10, 10)
        assert QueryEngine(data, "hamming").backend == "bitpack"

    def test_auto_picks_dense_for_continuous(self):
        data = random_continuous_dataset(_rng(0), 6, 10, 10)
        assert QueryEngine(data, "l2").backend == "dense"

    def test_auto_picks_dense_for_nonbinary_hamming(self):
        data = Dataset([[0.0, 2.0]], [[1.0, 0.0]])
        assert QueryEngine(data, "hamming").backend == "dense"

    def test_auto_picks_kdtree_for_large_low_dim(self):
        rng = _rng(0)
        pts = rng.normal(size=(17_000, 3))
        labels = rng.integers(0, 2, size=17_000).astype(bool)
        data = Dataset(pts[labels], pts[~labels])
        assert QueryEngine(data, "l2").backend == "kdtree"

    def test_explicit_backends_reported(self):
        data = random_discrete_dataset(_rng(0), 5, 8, 8)
        for backend in ("dense", "kdtree", "bitpack", "ivf"):
            assert QueryEngine(data, "hamming", backend=backend).backend == backend

    def test_unknown_backend_rejected(self):
        data = random_discrete_dataset(_rng(0), 4, 3, 3)
        with pytest.raises(ValidationError):
            QueryEngine(data, "hamming", backend="faiss")

    def test_bitpack_requires_hamming_metric(self):
        data = random_continuous_dataset(_rng(0), 4, 3, 3)
        with pytest.raises(ValidationError):
            QueryEngine(data, "l2", backend="bitpack")

    def test_bitpack_requires_binary_data(self):
        data = Dataset([[0.0, 2.0]], [[1.0, 0.0]])
        with pytest.raises(ValidationError):
            QueryEngine(data, "hamming", backend="bitpack")

    def test_classifier_forwards_backend(self):
        data = random_discrete_dataset(_rng(0), 5, 8, 8)
        clf = KNNClassifier(data, k=3, metric="hamming", backend="bitpack")
        assert clf.engine.backend == "bitpack"
        dense = KNNClassifier(data, k=3, metric="hamming", backend="dense")
        queries = _rng(1).integers(0, 2, size=(10, 5)).astype(float)
        np.testing.assert_array_equal(
            clf.classify_batch(queries), dense.classify_batch(queries)
        )

    def test_backends_tuple_is_public(self):
        assert BACKENDS == ("auto", "dense", "kdtree", "bitpack", "ivf")

    def test_ivf_requires_lp_or_hamming_like_kdtree(self):
        # Both certificate-based backends share the metric requirement;
        # nothing else is rejected (any lp/Hamming data quantizes).
        data = random_continuous_dataset(_rng(0), 4, 6, 6)
        engine = QueryEngine(data, "l2", backend="ivf")
        assert engine.backend == "ivf"


class TestEnginePickling:
    def test_roundtrip_drops_cache_and_preserves_results(self):
        data = random_discrete_dataset(_rng(3), 5, 6, 6)
        engine = QueryEngine(data, "hamming", backend="bitpack")
        queries = _rng(4).integers(0, 2, size=(8, 5)).astype(float)
        engine.classify(queries[0], 1)  # populate the cache
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.cache_info()["size"] == 0
        assert clone.backend == "bitpack"
        np.testing.assert_array_equal(
            engine.classify_batch(queries, 3), clone.classify_batch(queries, 3)
        )

    @pytest.mark.parametrize("backend", ["kdtree", "ivf"])
    def test_tree_and_ivf_engines_roundtrip(self, backend):
        data = random_continuous_dataset(_rng(5), 3, 30, 30, integer=True)
        engine = QueryEngine(data, "l2", backend=backend)
        clone = pickle.loads(pickle.dumps(engine))
        queries = _rng(6).integers(-4, 5, size=(5, 3)).astype(float)
        for orig_side, clone_side in zip(
            engine.radii_batch(queries, 3), clone.radii_batch(queries, 3)
        ):
            np.testing.assert_array_equal(orig_side, clone_side)


class TestMapShards:
    @pytest.mark.parametrize("backend", ["dense", "bitpack"])
    def test_sharded_matches_direct(self, backend):
        data, queries = _hamming_case(11, q=40)
        engine = QueryEngine(data, "hamming", backend=backend)
        direct = engine.classify_batch(queries, 3)
        sharded = engine.map_shards(
            "classify_batch", queries, 3, workers=2, min_shard_rows=4
        )
        np.testing.assert_array_equal(direct, sharded)

    def test_radii_and_matrix_methods(self):
        data, queries = _hamming_case(12, q=30)
        engine = QueryEngine(data, "hamming")
        r_direct = engine.radii_batch(queries, 1)
        r_shard = engine.map_shards("radii_batch", queries, 1, workers=2, min_shard_rows=4)
        for direct_side, shard_side in zip(r_direct, r_shard):
            np.testing.assert_array_equal(direct_side, shard_side)
        np.testing.assert_array_equal(
            engine.powers_matrix(queries),
            engine.map_shards("powers_matrix", queries, workers=2, min_shard_rows=4),
        )

    def test_small_batches_stay_in_process(self):
        data, queries = _hamming_case(13, q=6)
        engine = QueryEngine(data, "hamming")
        # 6 rows < min_shard_rows: the direct path runs (and still uses
        # this process's cache bookkeeping, observable via cache_info).
        out = engine.map_shards("margins_batch", queries, 1, workers=4)
        np.testing.assert_array_equal(out, engine.margins_batch(queries, 1))

    def test_validation(self):
        data, queries = _hamming_case(14)
        engine = QueryEngine(data, "hamming")
        with pytest.raises(ValidationError):
            engine.map_shards("classify", queries, 1)
        with pytest.raises(ValidationError):
            engine.map_shards("classify_batch", queries)  # k missing
        with pytest.raises(ValidationError):
            engine.map_shards("classify_batch", queries, 99, workers=2)


def _double_n(params: dict):
    # module-level so run_sweep(workers=2) can pickle the factory
    value = params["n"]
    return lambda: value * 2


class TestRunSweepWorkers:
    def test_parallel_matches_serial_grid(self):
        grid = [{"n": n, "N": N} for n in (1, 2) for N in (10, 20)]
        serial = run_sweep("demo", grid, _double_n, repeats=1)
        parallel = run_sweep("demo", grid, _double_n, repeats=1, workers=2)
        assert [
            {k: row[k] for k in ("n", "N")} for row in serial.rows
        ] == [{k: row[k] for k in ("n", "N")} for row in parallel.rows]
        assert all(row["repeats"] == 1 for row in parallel.rows)

    def test_unpicklable_task_falls_back_serially(self):
        grid = [{"n": 1}, {"n": 2}]
        closure_local = 3
        with pytest.warns(UserWarning, match="picklable"):
            result = run_sweep(
                "demo",
                grid,
                lambda p: (lambda: p["n"] * closure_local),
                repeats=1,
                workers=2,
            )
        assert len(result.rows) == 2

    def test_save_json_roundtrip(self, tmp_path):
        grid = [{"n": 1}]
        result = run_sweep("demo", grid, _double_n, repeats=1)
        path = tmp_path / "BENCH_sweep.json"
        result.save_json(path)
        import json

        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert payload["rows"][0]["n"] == 1
        assert "median" in payload["rows"][0]
