"""Tests for the final-remarks extensions: thinning and multi-label."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.knn import Dataset, KNNClassifier
from repro.knn.multiclass import MultiClass1NN
from repro.knn.thinning import condense, relevant_points_1nn

from .helpers import random_continuous_dataset, random_discrete_dataset


class TestCondense:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_training_set_consistency(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 6, 6)
        thin = condense(data, k=1, metric="hamming")
        assert len(thin) <= len(data)
        full = KNNClassifier(data, k=1, metric="hamming")
        reduced = KNNClassifier(thin, k=1, metric="hamming")
        points, _ = data.all_points()
        for p in points:
            assert full.classify(p) == reduced.classify(p)

    def test_separated_blobs_condense_hard(self, rng):
        # Widely separated classes condense to very few points.
        pos = rng.normal(size=(30, 2)) + 10
        neg = rng.normal(size=(30, 2)) - 10
        data = Dataset(pos, neg)
        thin = condense(data, k=1, metric="l2")
        assert len(thin) <= 6

    def test_multiplicities_expanded(self):
        data = Dataset([[0.0]], [[1.0]], positive_multiplicities=[3])
        thin = condense(data)
        assert not thin.has_multiplicities


class TestRelevantPoints:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_function_preserved_on_random_probes(self, seed):
        rng = np.random.default_rng(seed)
        data = random_continuous_dataset(rng, 2, 4, 4)
        thin = relevant_points_1nn(data)
        assert len(thin) <= len(data)
        full = KNNClassifier(data, k=1, metric="l2")
        reduced = KNNClassifier(thin, k=1, metric="l2")
        for _ in range(200):
            x = rng.normal(size=2) * 3
            assert full.classify(x) == reduced.classify(x)

    def test_interior_points_removed(self, rng):
        # A positive point buried deep inside its own class is irrelevant.
        pos = np.array([[0.0, 0.0], [0.1, 0.0], [-0.1, 0.0], [0.0, 0.1]])
        neg = np.array([[10.0, 10.0]])
        data = Dataset(pos, neg)
        thin = relevant_points_1nn(data)
        assert thin.n_positive < 4

    def test_one_class_collapses(self, rng):
        data = Dataset(rng.normal(size=(5, 2)), [])
        thin = relevant_points_1nn(data)
        assert len(thin) == 1  # constant function needs one point

    def test_explanations_agree_after_thinning(self, rng):
        """The motivating claim: explanations computed on the thinned set
        match those on the full set (the function is identical)."""
        from repro.counterfactual import closest_counterfactual

        data = random_continuous_dataset(rng, 2, 5, 5)
        thin = relevant_points_1nn(data)
        x = rng.normal(size=2)
        full_cf = closest_counterfactual(data, 1, "l2", x)
        thin_cf = closest_counterfactual(thin, 1, "l2", x)
        assert full_cf.infimum == pytest.approx(thin_cf.infimum, abs=1e-7)


class TestMultiClass:
    def _three_class(self):
        points = np.array(
            [[0.0, 0.0], [0.5, 0.0], [10.0, 0.0], [10.5, 0.0], [0.0, 10.0], [0.0, 10.5]]
        )
        labels = np.array([0, 0, 1, 1, 2, 2])
        return MultiClass1NN(points, labels)

    def test_classify(self):
        clf = self._three_class()
        assert clf.classify([0.1, 0.1]) == 0
        assert clf.classify([10.2, 0.0]) == 1
        assert clf.classify([0.0, 9.0]) == 2

    def test_tie_breaks_to_smallest_label(self):
        clf = MultiClass1NN([[0.0], [2.0]], [2, 1])
        assert clf.classify([1.0]) == 1

    def test_label_validation(self):
        with pytest.raises(ValidationError):
            MultiClass1NN([[0.0]], [0, 1])
        clf = self._three_class()
        with pytest.raises(ValidationError):
            clf.merged(99)

    def test_sufficient_reason_roundtrip(self):
        clf = self._three_class()
        x = np.array([0.1, 0.1])
        X = clf.minimal_sufficient_reason(x)
        assert clf.check_sufficient_reason(x, X)

    def test_untargeted_counterfactual(self):
        clf = self._three_class()
        x = np.array([0.1, 0.1])
        result = clf.closest_counterfactual(x)
        assert result.found
        assert clf.classify(result.y) != 0

    def test_targeted_counterfactual(self):
        clf = self._three_class()
        x = np.array([0.1, 0.1])
        result = clf.closest_counterfactual(x, target=2)
        assert result.found
        # Boundary optima carry the target label under the optimistic
        # merge semantics (favor=target); a point nudged past the
        # boundary carries it unconditionally.
        assert clf.classify(result.y, favor=2) == 2
        deeper = result.y + (result.y - x) * 1e-6
        assert clf.classify(deeper) == 2
        with pytest.raises(ValidationError):
            clf.closest_counterfactual(x, target=0)

    def test_discrete_multiclass(self, rng):
        points = rng.integers(0, 2, size=(12, 5)).astype(float)
        labels = rng.integers(0, 3, size=12)
        # Ensure all three classes appear.
        labels[:3] = [0, 1, 2]
        clf = MultiClass1NN(points, labels)
        x = rng.integers(0, 2, size=5).astype(float)
        label = clf.classify(x)
        result = clf.closest_counterfactual(x)
        if result.found:
            assert clf.classify(result.y) != label
