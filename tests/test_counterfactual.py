"""Tests for counterfactual explanations across metrics and pipelines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counterfactual import closest_counterfactual, exists_counterfactual
from repro.exceptions import UnsupportedSettingError, ValidationError
from repro.knn import Dataset, KNNClassifier

from .helpers import (
    brute_force_closest_counterfactual_discrete,
    random_continuous_dataset,
    random_discrete_dataset,
)

HAMMING_METHODS = ["hamming-milp", "hamming-sat", "hamming-brute"]


class TestDispatch:
    def test_metric_method_mismatch(self, rng):
        data = random_discrete_dataset(rng, 3, 2, 2)
        with pytest.raises(ValidationError):
            closest_counterfactual(data, 1, "hamming", np.zeros(3), method="l2-qp")
        with pytest.raises(ValidationError):
            closest_counterfactual(data, 1, "l2", np.zeros(3), method="hamming-sat")

    def test_unknown_method(self, rng):
        data = random_discrete_dataset(rng, 3, 2, 2)
        with pytest.raises(ValidationError):
            closest_counterfactual(data, 1, "hamming", np.zeros(3), method="oracle")

    def test_unsupported_metric(self, rng):
        data = random_continuous_dataset(rng, 3, 2, 2)
        with pytest.raises(UnsupportedSettingError):
            closest_counterfactual(data, 1, "lp:3", np.zeros(3))

    def test_sat_rejects_k3(self, rng):
        data = random_discrete_dataset(rng, 3, 3, 3)
        with pytest.raises(UnsupportedSettingError):
            closest_counterfactual(data, 3, "hamming", np.zeros(3), method="hamming-sat")


class TestL2:
    def test_two_point_line(self):
        # Positive at 0, negative at 4: boundary at 2.  From x=1 the
        # closest counterfactual sits just past 2 (open target region).
        data = Dataset([[0.0]], [[4.0]])
        result = closest_counterfactual(data, 1, "l2", [1.0])
        assert result.found
        assert result.label_from == 1
        assert result.infimum == pytest.approx(1.0, abs=1e-6)
        assert result.distance == pytest.approx(1.0, rel=1e-4)
        clf = KNNClassifier(data, k=1, metric="l2")
        assert clf.classify(result.y) == 0

    def test_flip_into_closed_region_attained(self):
        # From the negative side, the target region (label 1) is closed:
        # the midpoint itself classifies positive (optimistic tie).
        data = Dataset([[0.0]], [[4.0]])
        result = closest_counterfactual(data, 1, "l2", [3.0])
        assert result.found
        assert result.distance == pytest.approx(1.0, abs=1e-8)
        assert result.infimum == pytest.approx(result.distance, abs=1e-8)

    def test_one_class_data_has_no_counterfactual(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [])
        result = closest_counterfactual(data, 1, "l2", [0.0, 0.0])
        assert not result.found
        assert not exists_counterfactual(data, 1, "l2", [0.0, 0.0], 100.0)

    def test_counterfactual_always_flips(self, rng):
        for k in (1, 3):
            data = random_continuous_dataset(rng, 3, 4, 4)
            clf = KNNClassifier(data, k=k, metric="l2")
            x = rng.normal(size=3)
            result = closest_counterfactual(data, k, "l2", x)
            assert result.found
            assert clf.classify(result.y) != clf.classify(x)
            assert result.infimum <= result.distance + 1e-9

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25)
    def test_no_closer_counterfactual_exists(self, seed):
        """Random probing cannot beat the reported infimum."""
        rng = np.random.default_rng(seed)
        data = random_continuous_dataset(rng, 2, 3, 3)
        clf = KNNClassifier(data, k=1, metric="l2")
        x = rng.normal(size=2)
        result = closest_counterfactual(data, 1, "l2", x)
        label = clf.classify(x)
        for _ in range(300):
            radius = result.infimum * rng.uniform(0.0, 0.999)
            direction = rng.normal(size=2)
            direction /= np.linalg.norm(direction)
            probe = x + radius * direction
            assert clf.classify(probe) == label

    def test_exists_radius_decision(self):
        data = Dataset([[0.0]], [[4.0]])
        assert exists_counterfactual(data, 1, "l2", [1.0], 1.5)
        assert not exists_counterfactual(data, 1, "l2", [1.0], 0.5)
        # Exactly at the infimum of an open region: No (strict rule).
        assert not exists_counterfactual(data, 1, "l2", [1.0], 1.0 - 1e-9)


class TestL1:
    def test_two_point_line(self):
        data = Dataset([[0.0, 0.0]], [[4.0, 0.0]])
        result = closest_counterfactual(data, 1, "l1", [1.0, 0.0])
        assert result.found
        assert result.distance == pytest.approx(1.0, rel=1e-3)
        clf = KNNClassifier(data, k=1, metric="l1")
        assert clf.classify(result.y) == 0

    def test_flip_to_positive_non_strict(self):
        data = Dataset([[0.0, 0.0]], [[4.0, 0.0]])
        result = closest_counterfactual(data, 1, "l1", [3.0, 0.0])
        assert result.distance == pytest.approx(1.0, abs=1e-6)

    def test_agrees_with_hamming_on_boolean_data(self, rng):
        # On {0,1}^n with integer-coordinate optima, l1 and Hamming
        # counterfactual distances coincide.
        for _ in range(5):
            data = random_discrete_dataset(rng, 4, 3, 3)
            x = rng.integers(0, 2, size=4).astype(float)
            clf_h = KNNClassifier(data, k=1, metric="hamming")
            ref, dist = brute_force_closest_counterfactual_discrete(clf_h, x)
            result = closest_counterfactual(data, 1, "l1", x)
            if ref is None:
                assert not result.found
            else:
                assert result.found
                assert result.distance <= dist + 1e-6
                clf_l1 = KNNClassifier(data, k=1, metric="l1")
                assert clf_l1.classify(result.y) != clf_l1.classify(x)

    def test_k3(self, rng):
        data = random_continuous_dataset(rng, 2, 3, 3)
        clf = KNNClassifier(data, k=3, metric="l1")
        x = rng.normal(size=2)
        result = closest_counterfactual(data, 3, "l1", x)
        assert result.found
        assert clf.classify(result.y) != clf.classify(x)


@pytest.mark.parametrize("method", HAMMING_METHODS)
class TestHammingPipelines:
    def test_single_flip(self, method):
        data = Dataset([[0, 0, 0]], [[1, 0, 0]], discrete=True)
        result = closest_counterfactual(data, 1, "hamming", [0.0, 0.0, 0.0], method=method)
        assert result.found
        assert result.distance == 1.0

    def test_one_class(self, method):
        data = Dataset([[0, 1], [1, 0]], [], discrete=True)
        result = closest_counterfactual(data, 1, "hamming", [0.0, 0.0], method=method)
        assert not result.found

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 5),
        m_pos=st.integers(1, 3),
        m_neg=st.integers(1, 3),
    )
    @settings(max_examples=20)
    def test_matches_brute_force(self, method, seed, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        ref, ref_dist = brute_force_closest_counterfactual_discrete(clf, x)
        result = closest_counterfactual(data, 1, "hamming", x, method=method)
        if ref is None:
            assert not result.found
        else:
            assert result.found
            assert result.distance == ref_dist
            assert clf.classify(result.y) != clf.classify(x)


class TestHammingK3:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(2, 4),
    )
    @settings(max_examples=15)
    def test_enumerated_milp_matches_brute(self, seed, n):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, 3, 3)
        clf = KNNClassifier(data, k=3, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        milp = closest_counterfactual(data, 3, "hamming", x, method="hamming-milp")
        brute = closest_counterfactual(data, 3, "hamming", x, method="hamming-brute")
        assert milp.found == brute.found
        if brute.found:
            assert milp.distance == brute.distance
            assert clf.classify(milp.y) != clf.classify(x)

    def test_guarded_formulation_rejects_k3(self, rng):
        data = random_discrete_dataset(rng, 3, 3, 3)
        with pytest.raises(ValidationError):
            closest_counterfactual(
                data, 3, "hamming", np.zeros(3), method="hamming-milp", formulation="guarded"
            )


class TestSATLinearVsBinary:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_strategies_agree(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 4, 2, 2)
        x = rng.integers(0, 2, size=4).astype(float)
        a = closest_counterfactual(data, 1, "hamming", x, method="hamming-sat", strategy="binary")
        b = closest_counterfactual(data, 1, "hamming", x, method="hamming-sat", strategy="linear")
        assert a.found == b.found
        if a.found:
            assert a.distance == b.distance


class TestPaperFigure2Geometry:
    def test_counterfactual_lies_on_bisector_midpoint(self):
        """With one positive and one negative point, the closest l2
        counterfactual from the positive side is (just past) the foot of
        the perpendicular onto the bisector hyperplane."""
        data = Dataset([[0.0, 0.0]], [[2.0, 2.0]])
        x = np.array([0.5, 0.0])
        result = closest_counterfactual(data, 1, "l2", x)
        # Bisector: x0 + x1 = 2; distance from (0.5, 0) is |0.5-2|/sqrt(2).
        expected = abs(0.5 + 0.0 - 2.0) / np.sqrt(2.0)
        assert result.infimum == pytest.approx(expected, abs=1e-7)
