"""Tests for halfspaces, polyhedra, affine subspaces, and decision regions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AffineSubspace,
    Halfspace,
    Polyhedron,
    bisector_halfspace,
    decision_region_polyhedra,
)
from repro.geometry.regions import count_region_polyhedra
from repro.knn import Dataset, KNNClassifier


class TestBisector:
    def test_midpoint_on_boundary(self):
        h = bisector_halfspace([0.0, 0.0], [2.0, 0.0])
        mid = np.array([1.0, 0.0])
        assert np.isclose(h.w @ mid, h.b)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 5),
    )
    @settings(max_examples=50)
    def test_halfspace_matches_distance_comparison(self, seed, n):
        rng = np.random.default_rng(seed)
        a, c, x = rng.normal(size=(3, n)) * 3
        if np.allclose(a, c):
            return
        h = bisector_halfspace(a, c)
        closer_to_a = np.linalg.norm(x - a) <= np.linalg.norm(x - c) + 1e-12
        assert h.contains(x, tol=1e-7) == closer_to_a or np.isclose(
            np.linalg.norm(x - a), np.linalg.norm(x - c)
        )

    def test_strict_flag(self):
        h = bisector_halfspace([0.0], [2.0], strict=True)
        assert h.strict
        assert not h.contains([1.0])  # boundary excluded
        assert h.contains([0.5])

    def test_flipped_complements(self):
        h = Halfspace(np.array([1.0]), 1.0)
        f = h.flipped()
        assert f.strict
        assert h.contains([0.5]) and not f.contains([0.5])
        assert not h.contains([1.5]) and f.contains([1.5])


class TestPolyhedron:
    def test_box_contains(self):
        # 0 <= x <= 1 in each of 2 dims.
        hs = [
            Halfspace(np.array([1.0, 0.0]), 1.0),
            Halfspace(np.array([-1.0, 0.0]), 0.0),
            Halfspace(np.array([0.0, 1.0]), 1.0),
            Halfspace(np.array([0.0, -1.0]), 0.0),
        ]
        p = Polyhedron(2, hs)
        assert p.contains([0.5, 0.5])
        assert not p.contains([1.5, 0.5])
        point = p.find_point()
        assert point is not None and p.contains(point)

    def test_empty_polyhedron(self):
        hs = [Halfspace(np.array([1.0]), 0.0), Halfspace(np.array([-1.0]), -1.0)]
        p = Polyhedron(1, hs)  # x <= 0 and x >= 1
        assert p.is_empty()

    def test_strictly_empty_but_closure_nonempty(self):
        # x < 0 and x >= 0: empty, but the closure {x <= 0, x >= 0} = {0}.
        hs = [Halfspace(np.array([1.0]), 0.0, strict=True), Halfspace(np.array([-1.0]), 0.0)]
        p = Polyhedron(1, hs)
        assert p.is_empty()
        assert not p.closure().is_empty()

    def test_find_point_respects_strictness(self):
        hs = [
            Halfspace(np.array([1.0]), 1.0, strict=True),
            Halfspace(np.array([-1.0]), 0.0),
        ]
        p = Polyhedron(1, hs)  # 0 <= x < 1
        point = p.find_point()
        assert point is not None
        assert 0.0 - 1e-9 <= point[0] < 1.0

    def test_find_point_with_equalities(self):
        hs = [Halfspace(np.array([1.0, 1.0]), 1.0)]
        p = Polyhedron(2, hs)
        A_eq = np.array([[1.0, 0.0]])
        point = p.find_point(A_eq, np.array([5.0]))
        # x0 = 5 forces x1 <= -4, which is feasible.
        assert point is not None
        assert point[0] == pytest.approx(5.0)
        assert point.sum() <= 1.0 + 1e-9
        # An equality clashing with a strict constraint is infeasible.
        strict = Polyhedron(2, [Halfspace(np.array([1.0, 0.0]), 5.0, strict=True)])
        assert strict.find_point(A_eq, np.array([5.0])) is None

    def test_intersect(self):
        p1 = Polyhedron(1, [Halfspace(np.array([1.0]), 1.0)])
        p2 = Polyhedron(1, [Halfspace(np.array([-1.0]), 0.0)])
        inter = p1.intersect(p2)
        assert inter.n_constraints == 2
        assert inter.contains([0.5])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Polyhedron(2, [Halfspace(np.array([1.0]), 0.0)])


class TestAffineSubspace:
    def test_equality_system(self):
        u = AffineSubspace([1.0, 2.0, 3.0], [0, 2])
        A, b = u.equality_system()
        assert A.shape == (2, 3)
        np.testing.assert_array_equal(b, [1.0, 3.0])

    def test_substitute_and_embed_roundtrip(self):
        u = AffineSubspace([1.0, 2.0, 3.0], [1])
        A = np.array([[1.0, 1.0, 1.0], [0.0, 2.0, -1.0]])
        b = np.array([10.0, 0.0])
        A_sub, b_sub = u.substitute(A, b)
        assert A_sub.shape == (2, 2)
        z = np.array([0.5, -0.5])
        y = u.embed(z)
        np.testing.assert_allclose(A_sub @ z - b_sub, A @ y - b)

    def test_contains(self):
        u = AffineSubspace([1.0, 2.0], [0])
        assert u.contains([1.0, 99.0])
        assert not u.contains([1.1, 2.0])

    def test_embed_wrong_size(self):
        u = AffineSubspace([1.0, 2.0], [0])
        with pytest.raises(ValueError):
            u.embed([1.0, 2.0])


class TestDecisionRegions:
    def _check_cover(self, dataset, k, points):
        """Region polyhedra must cover exactly the points of each label."""
        clf = KNNClassifier(dataset, k=k, metric="l2")
        for label in (0, 1):
            pieces = list(decision_region_polyhedra(dataset, k, label))
            assert len(pieces) == count_region_polyhedra(dataset, k, label)
            for x in points:
                inside = any(p.contains(x) for p in pieces)
                assert inside == (clf.classify(x) == label), (x, label)

    def test_k1_cover(self, rng):
        data = Dataset(rng.normal(size=(3, 2)), rng.normal(size=(3, 2)))
        pts = rng.normal(size=(40, 2)) * 2
        self._check_cover(data, 1, pts)

    def test_k3_cover(self, rng):
        data = Dataset(rng.normal(size=(3, 2)), rng.normal(size=(3, 2)))
        pts = rng.normal(size=(25, 2)) * 2
        self._check_cover(data, 3, pts)

    def test_k3_with_minority_positive_class(self, rng):
        # |S+| = 1 < (k+1)/2: the positive region is empty.
        data = Dataset(rng.normal(size=(1, 2)), rng.normal(size=(4, 2)))
        assert list(decision_region_polyhedra(data, 3, 1)) == []
        assert count_region_polyhedra(data, 3, 1) == 0

    def test_region_count_formula(self):
        data = Dataset(np.zeros((4, 2)), np.ones((3, 2)))
        # k=3: C(4,2) * (C(3,0)+C(3,1)) = 6 * 4 = 24
        assert count_region_polyhedra(data, 3, 1) == 24
