"""Tests for the data substrate (synthetic points, digits, graphs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DigitImages,
    binarize_images,
    gaussian_blobs,
    random_boolean_dataset,
    random_graph,
    random_regular_graph,
    render_ascii,
    scale_image,
)
from repro.exceptions import ValidationError
from repro.knn import KNNClassifier


class TestRandomBoolean:
    def test_shapes_and_values(self, rng):
        data = random_boolean_dataset(rng, n=10, size=40)
        assert data.dimension == 10
        assert len(data) == 40
        assert data.discrete

    def test_both_classes_nonempty(self, rng):
        for _ in range(20):
            data = random_boolean_dataset(rng, 3, 2)
            assert data.n_positive >= 1 and data.n_negative >= 1

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            random_boolean_dataset(rng, 0, 10)
        with pytest.raises(ValidationError):
            random_boolean_dataset(rng, 3, 1)
        with pytest.raises(ValidationError):
            random_boolean_dataset(rng, 3, 10, label_probability=1.5)


class TestBlobs:
    def test_separated_blobs_classify_well(self, rng):
        data = gaussian_blobs(rng, 2, 30, separation=8.0)
        clf = KNNClassifier(data, k=3)
        assert clf.classify([4.0, 4.0]) == 1
        assert clf.classify([-4.0, -4.0]) == 0

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            gaussian_blobs(rng, 2, 0)


class TestDigits:
    def test_generation_shape(self, rng):
        imgs = DigitImages.generate(rng, digits=(4, 9), count_per_digit=5, side=12)
        assert imgs.images.shape == (10, 12, 12)
        assert imgs.side == 12
        assert set(imgs.labels) == {4, 9}
        assert imgs.images.min() >= 0.0 and imgs.images.max() <= 1.0

    def test_digits_are_separable(self, rng):
        """1-NN on held-out digit images should be nearly perfect — the
        generator must produce class-clustered data like MNIST."""
        train = DigitImages.generate(rng, (4, 9), count_per_digit=25, side=12)
        test = DigitImages.generate(rng, (4, 9), count_per_digit=10, side=12)
        data = train.to_dataset(positive_digit=4)
        clf = KNNClassifier(data, k=1, metric="l2")
        predictions = clf.classify_batch(test.flattened())
        accuracy = (predictions == (test.labels == 4)).mean()
        assert accuracy >= 0.9

    def test_binarized_dataset_is_discrete(self, rng):
        imgs = DigitImages.generate(rng, (4, 9), count_per_digit=3, side=8)
        data = imgs.to_dataset(4, binarized=True)
        assert data.discrete

    def test_single_digit_rejected(self, rng):
        imgs = DigitImages.generate(rng, (4,), count_per_digit=3, side=8)
        with pytest.raises(ValidationError):
            imgs.to_dataset(4)
        with pytest.raises(ValidationError):
            imgs.to_dataset(9)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValidationError):
            DigitImages.generate(rng, (10,), count_per_digit=1, side=8)
        with pytest.raises(ValidationError):
            DigitImages.generate(rng, (4,), count_per_digit=0, side=8)
        with pytest.raises(ValidationError):
            DigitImages.generate(rng, (4,), count_per_digit=1, side=2)

    @given(side=st.integers(4, 20))
    @settings(max_examples=10)
    def test_any_side_length(self, side):
        rng = np.random.default_rng(side)
        imgs = DigitImages.generate(rng, (7,), count_per_digit=1, side=side)
        assert imgs.images.shape == (1, side, side)
        assert imgs.images.max() > 0.3  # strokes actually visible

    def test_binarize(self):
        images = np.array([[[0.2, 0.7], [0.5, 0.4]]])
        out = binarize_images(images)
        np.testing.assert_array_equal(out, [[[0.0, 1.0], [1.0, 0.0]]])

    def test_scale_image(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        up = scale_image(img, 8)
        assert up.shape == (8, 8)
        assert up[0, 0] == img[0, 0] and up[-1, -1] == img[-1, -1]
        down = scale_image(img, 2)
        assert down.shape == (2, 2)
        with pytest.raises(ValidationError):
            scale_image(np.zeros(5), 2)

    def test_render_ascii(self):
        art = render_ascii(np.array([[0.0, 1.0], [0.5, 0.0]]))
        lines = art.split("\n")
        assert len(lines) == 2 and len(lines[0]) == 2
        assert lines[0][0] == " " and lines[0][1] == "@"
        # Flat vectors are reshaped automatically.
        art_flat = render_ascii(np.zeros(9))
        assert len(art_flat.split("\n")) == 3


class TestGraphs:
    def test_random_graph_has_edges(self, rng):
        g = random_graph(rng, 5, p=0.0)
        assert g.number_of_edges() == 1  # forced edge
        with pytest.raises(ValidationError):
            random_graph(rng, 1)

    def test_random_regular(self, rng):
        g = random_regular_graph(rng, 6, 3)
        assert all(d == 3 for _, d in g.degree)
        with pytest.raises(ValidationError):
            random_regular_graph(rng, 5, 3)  # odd n*d
