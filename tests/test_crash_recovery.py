"""Crash recovery: SIGKILL a live serve process mid-mutation, restart, verify.

The strongest claim of the durability layer is exercised end to end over
real processes and a real state directory: a ``repro serve --state-dir``
process is killed with ``SIGKILL`` (no shutdown path, no flush
opportunity) while a client streams mutation batches at it.  A restarted
process over the same state directory must come back with

* a restored version ``V`` between the acknowledged and the sent batch
  count (a batch the client never got an ack for may legally be durable
  — fsync happens *before* the ack — but an acknowledged batch may
  never be lost);
* the lineage fingerprint ``<fp>@vV`` **bit-for-bit equal** to an
  in-memory functional fold of the first ``V`` batches (the
  snapshot == functional-fold invariant from ``tests/test_fuzz_parity.py``);
* query answers identical to an uninterrupted in-process reference
  service over the same fold.

Both serving topologies are covered: single process and a sharded
cluster (each worker owns its own WAL under the shared state dir).
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.knn import Dataset
from repro.serve import ExplanationService, versioned_fingerprint

REPO = Path(__file__).resolve().parents[1]

#: fixed seed: the whole mutation history is deterministic, so the
#: in-process reference fold reproduces exactly what the server saw.
SEED = 20260808

DIMENSION = 4
N_BATCHES = 40
KILL_AFTER_ACKS = 5


def _post(url: str, body: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def _history(rng):
    """The deterministic crash-test history: base dataset + add batches."""
    data = Dataset(rng.normal(size=(16, DIMENSION)), rng.normal(size=(16, DIMENSION)))
    batches = []
    for _ in range(N_BATCHES):
        points = rng.normal(size=(2, DIMENSION))
        batches.append((points, [1, -1]))
    return data, batches


def _start_server(state_dir: Path, *extra: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on an ephemeral port; return (process, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--no-json-logs", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PYTHONUNBUFFERED": "1",
                       "PATH": "/usr/bin:/bin"},
    )
    port = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError("serve process exited before binding")
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    assert port is not None, "serve process never reported its port"
    # Keep draining stdout so the server can never block on a full pipe.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return proc, port


def _register(port: int, data: Dataset) -> str:
    reply = _post(f"http://127.0.0.1:{port}/v2/datasets", {
        "positives": data.positives.tolist(),
        "negatives": data.negatives.tolist(),
    })
    return reply["fingerprint"]


def _stream_and_kill(proc, port, fp, batches):
    """Stream mutation batches; SIGKILL the server mid-stream.

    Returns ``(acked, sent)`` batch counts.  The sender runs in a
    thread; the main thread fires ``SIGKILL`` — no warning, no flush —
    once ``KILL_AFTER_ACKS`` acknowledgements came back, so the kill
    lands while a batch is typically in flight.
    """
    acked, sent = [], []
    url = f"http://127.0.0.1:{port}/v2/datasets/{fp}/points"

    def sender():
        for points, labels in batches:
            sent.append(1)
            try:
                reply = _post(url, {
                    "points": points.tolist(), "labels": labels,
                }, timeout=30.0)
            except (urllib.error.URLError, OSError, ConnectionError):
                return  # the kill landed
            if "error" in reply:  # pragma: no cover - would fail the test later
                return
            acked.append(reply["version"])

    thread = threading.Thread(target=sender, daemon=True)
    thread.start()
    deadline = time.monotonic() + 60
    while len(acked) < KILL_AFTER_ACKS and time.monotonic() < deadline:
        time.sleep(0.001)
    assert len(acked) >= KILL_AFTER_ACKS, "server never acknowledged enough batches"
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    thread.join(timeout=30)
    # Orphaned cluster workers notice the dead front via EOF on their
    # pipe *after* finishing any in-flight op; give them a beat.
    time.sleep(0.5)
    return len(acked), len(sent)


def _reference_service(data, batches, n_applied, fp):
    """An uninterrupted in-process service over the first *n* batches."""
    reference = ExplanationService()
    reference.add_dataset(data)
    for points, labels in batches[:n_applied]:
        reference.add_points(fp, points, labels)
    return reference


def _assert_recovered(port, data, batches, fp, acked, sent, rng):
    """The shared post-restart verification for both topologies."""
    described = _get(f"http://127.0.0.1:{port}/v2/datasets/{fp}")
    version = described["version"]
    # Durable-ack window: everything acknowledged must be back; at most
    # the one in-flight batch may additionally have survived.
    assert acked <= version <= sent
    # Bit-for-bit lineage identity vs the functional fold (the restored
    # fingerprint is derived from the restored *contents* on the server).
    assert described["fingerprint"] == versioned_fingerprint(fp, version)
    reference = _reference_service(data, batches, version, fp)
    assert reference.fingerprints() == [described["fingerprint"]]
    assert described["n_positive"] == reference.dataset(fp).n_positive
    assert described["n_negative"] == reference.dataset(fp).n_negative
    # Answers after restore are identical to the uninterrupted reference
    # (same batched ``explain`` path on both sides, so the comparison is
    # exact — no float tolerance).
    queries = rng.normal(size=(4, DIMENSION))
    for method in ("classify", "margin"):
        served = _post(f"http://127.0.0.1:{port}/v2/explain", {
            "fingerprint": fp, "method": method,
            "instances": queries.tolist(), "params": {"k": 3},
        })["results"]
        expected = reference.explain(fp, method, queries.tolist(), {"k": 3})
        assert [r["result"] for r in served] == [r["result"] for r in expected]
    reference.close()


@pytest.mark.parametrize("topology", [(), ("--workers", "2")],
                         ids=["single-process", "cluster"])
def test_sigkill_mid_mutation_then_restore(tmp_path, topology):
    rng = np.random.default_rng(SEED)
    data, batches = _history(rng)
    state = tmp_path / "state"

    proc, port = _start_server(state, *topology)
    try:
        fp = _register(port, data)
        acked, sent = _stream_and_kill(proc, port, fp, batches)
    finally:
        if proc.poll() is None:  # pragma: no cover - only on assertion failure
            proc.kill()
            proc.wait(timeout=30)

    proc2, port2 = _start_server(state, *topology)
    try:
        _assert_recovered(port2, data, batches, fp, acked, sent, rng)
        # The restarted lineage is live, not read-only: mutations resume.
        reply = _post(f"http://127.0.0.1:{port2}/v2/datasets/{fp}/points", {
            "points": rng.normal(size=(2, DIMENSION)).tolist(), "labels": [1, -1],
        })
        assert "error" not in reply
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            proc2.kill()
            proc2.wait(timeout=30)


def test_restart_after_clean_shutdown_is_also_exact(tmp_path):
    # The degenerate (no-crash) case must obviously hold too: SIGTERM,
    # restart, identical lineage.
    rng = np.random.default_rng(SEED + 1)
    data, batches = _history(rng)
    state = tmp_path / "state"
    proc, port = _start_server(state)
    fp = _register(port, data)
    url = f"http://127.0.0.1:{port}/v2/datasets/{fp}/points"
    for points, labels in batches[:6]:
        reply = _post(url, {"points": points.tolist(), "labels": labels})
    final = reply["fingerprint"]
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)

    proc2, port2 = _start_server(state)
    try:
        described = _get(f"http://127.0.0.1:{port2}/v2/datasets/{fp}")
        assert described["fingerprint"] == final
        assert described["version"] == 6
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=30)
