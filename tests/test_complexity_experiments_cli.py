"""Tests for the complexity registry, experiment harness, and CLI."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cli import main
from repro.complexity import ENTRIES, Problem, Space, lookup, render_table
from repro.experiments import bench
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureSweepTask,
    figure5_workload,
    figure6_workload,
)
from repro.experiments.runner import SweepResult, run_sweep, time_callable
from repro.experiments.tables import render_results_table, render_table1


class TestComplexityRegistry:
    def test_every_cell_resolvable(self):
        for problem in Problem:
            for space in Space:
                for k in (1, 3):
                    entry = lookup(problem, space, k)
                    assert entry.complexity
                    assert entry.provenance

    def test_table1_paper_values(self):
        """Spot-check the registry against the paper's Table 1."""
        assert lookup(Problem.COUNTERFACTUAL, Space.L2, 5).complexity == "P"
        assert lookup(Problem.COUNTERFACTUAL, Space.L1, 1).complexity == "NP-complete"
        assert lookup(Problem.CHECK_SR, Space.L1, 3).complexity == "coNP-complete"
        assert lookup(Problem.CHECK_SR, Space.HAMMING, 1).complexity == "P"
        assert lookup(Problem.MINIMUM_SR, Space.HAMMING, 3).complexity == "Sigma2p-complete"
        assert "open" in lookup(Problem.MINIMUM_SR, Space.L1, 3).complexity

    def test_render_table_mentions_all_spaces(self):
        table = render_table()
        for space in Space:
            assert space.value in table
        assert "Theorem 2" in table
        assert table == render_table1()

    def test_entries_have_solver_pointers(self):
        for entry in ENTRIES:
            assert entry.solver.startswith("repro.")


class TestRunner:
    def test_time_callable(self):
        timing = time_callable(lambda: sum(range(1000)), repeats=2)
        assert timing["repeats"] == 2
        assert timing["min"] <= timing["median"] <= timing["max"]
        assert "truncated" not in timing  # only budgeted rows carry the flag

    def test_time_callable_budget_truncates(self):
        import time as _time

        timing = time_callable(
            lambda: _time.sleep(0.02), repeats=50, budget=0.01
        )
        assert timing["repeats"] == 1  # one run always happens, then stop
        assert timing["truncated"] is True

    def test_time_callable_budget_not_hit(self):
        timing = time_callable(lambda: None, repeats=2, budget=60.0)
        assert timing["repeats"] == 2
        assert timing["truncated"] is False

    def test_run_sweep_budget_reaches_rows(self):
        grid = [{"n": 1}, {"n": 2}]
        result = run_sweep(
            "budgeted", grid, lambda p: (lambda: None), repeats=2, budget=60.0
        )
        assert all(row["truncated"] is False for row in result.rows)

    def test_run_sweep_and_series(self):
        grid = [{"n": n, "N": N} for n in (1, 2) for N in (10, 20)]
        result = run_sweep("demo", grid, lambda p: (lambda: p["n"] * p["N"]), repeats=1)
        assert len(result.rows) == 4
        series = result.series("n", "N")
        assert set(series) == {10, 20}
        assert series[10][0] == [1, 2]

    def test_render_results_table(self):
        result = SweepResult("demo")
        result.add({"n": 1, "N": 10}, {"median": 0.001, "min": 0.001, "max": 0.001, "repeats": 1})
        result.add({"n": 2, "N": 10}, {"median": 0.002, "min": 0.002, "max": 0.002, "repeats": 1})
        text = render_results_table(result)
        assert "demo" in text
        assert "1.0ms" in text and "2.0ms" in text


class TestFigureWorkloads:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {"fig5a", "fig5b", "fig6a", "fig6b"}
        for spec in ALL_FIGURES.values():
            grid = list(spec.grid())
            assert grid and all("n" in p and "N" in p for p in grid)

    def test_figure5_task_runs(self, rng):
        task = figure5_workload(rng, 8, 10, method="hamming-milp")
        result = task()
        assert result.found

    def test_figure5_sat_task_runs(self, rng):
        task = figure5_workload(rng, 8, 10, method="hamming-sat")
        assert task().found

    def test_figure6_tasks_run(self, rng):
        msr = figure6_workload(rng, 6, 8, task_kind="msr-l1")()
        assert isinstance(msr, frozenset)
        cf = figure6_workload(rng, 6, 8, task_kind="cf-l2")()
        assert cf.found

    def test_figure6_bad_kind(self, rng):
        with pytest.raises(ValueError):
            figure6_workload(rng, 6, 8, task_kind="nope")


class TestFigureSweepTask:
    def test_picklable_and_deterministic(self):
        task_factory = FigureSweepTask("fig6a", seed=5)
        clone = pickle.loads(pickle.dumps(task_factory))
        assert (clone.figure_id, clone.seed) == ("fig6a", 5)
        task = clone({"n": 6, "N": 16})
        assert callable(task)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            FigureSweepTask("fig9z")

    def test_parallel_sweep_over_figure_grid(self):
        grid = [{"n": 6, "N": 16}, {"n": 6, "N": 24}]
        result = run_sweep(
            "fig6a-slice", grid, FigureSweepTask("fig6a", seed=1),
            repeats=1, workers=2,
        )
        assert [row["N"] for row in result.rows] == [16, 24]


class TestBenchHarness:
    def test_compare_gates_only_headline(self):
        baseline = {"workloads": {bench.HEADLINE: {"speedup": 10.0}}}
        ok = {"workloads": {bench.HEADLINE: {"speedup": 8.0}}}
        bad = {"workloads": {bench.HEADLINE: {"speedup": 7.0}}}
        assert bench.compare(ok, baseline, max_regression=0.25) == []
        failures = bench.compare(bad, baseline, max_regression=0.25)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_compare_missing_headline(self):
        assert bench.compare({}, {"workloads": {}})
        assert bench.compare(
            {"workloads": {}}, {"workloads": {bench.HEADLINE: {"speedup": 1.0}}}
        )

    def test_gated_best_retries_until_pass(self):
        speedups = iter([1.0, 2.0, 9.0, 9.0])

        def fake_measure(seed, repeats):
            return {"speedup": next(speedups)}

        stats = bench.gated_best(fake_measure, threshold=1.5, attempts=4)
        assert stats["speedup"] == 2.0
        assert stats["attempts"] == 2

    def test_gated_best_keeps_best_failure(self):
        speedups = iter([3.0, 1.0, 2.0])

        def fake_measure(seed, repeats):
            return {"speedup": next(speedups)}

        stats = bench.gated_best(fake_measure, threshold=100.0, attempts=3)
        assert stats["speedup"] == 3.0
        assert stats["attempts"] == 3

    def test_collect_subset_and_render(self):
        payload = bench.collect(repeats=1, workloads=["kdtree_lowdim"])
        assert payload["schema"] == bench.BENCH_SCHEMA
        assert set(payload["workloads"]) == {"kdtree_lowdim"}
        report = bench.render_report(payload)
        assert "kdtree_lowdim" in report
        with pytest.raises(ValueError):
            bench.collect(workloads=["nope"])

    def test_secondary_headline_gated_when_in_baseline(self):
        secondary = bench.GATED_HEADLINES[1]
        baseline = {"workloads": {
            bench.HEADLINE: {"speedup": 10.0}, secondary: {"speedup": 10.0},
        }}
        bad = {"workloads": {
            bench.HEADLINE: {"speedup": 9.0}, secondary: {"speedup": 2.0},
        }}
        failures = bench.compare(bad, baseline, max_regression=0.25)
        assert len(failures) == 1 and secondary in failures[0]

    def test_secondary_headline_skipped_for_old_baselines(self):
        baseline = {"workloads": {bench.HEADLINE: {"speedup": 10.0}}}
        current = {"workloads": {bench.HEADLINE: {"speedup": 9.0}}}
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_measure_msr_incremental_is_registered(self):
        assert "msr_incremental" in bench.WORKLOADS
        assert "msr_incremental" in bench.GATED_HEADLINES


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "(R, D_2)" in out

    def test_explain(self, capsys):
        assert main(["explain", "--dimension", "6", "--size", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "minimal sufficient reason" in out
        assert "counterfactual" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig9z"]) == 2

    def test_figure_tiny_run(self, capsys, tmp_path):
        # Shrink the grid by monkey-free means: run the smallest figure with
        # one repeat; fig6a's smallest cells are fast enough for a test.
        json_path = tmp_path / "BENCH_fig6a.json"
        assert main(
            ["figure", "fig6a", "--repeats", "1", "--seed", "1", "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out
        payload = json.loads(json_path.read_text())
        assert payload["rows"] and "median" in payload["rows"][0]

    def test_explain_backend_flag(self, capsys):
        assert main(
            ["explain", "--dimension", "6", "--size", "12", "--seed", "3",
             "--backend", "bitpack"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine backend: bitpack" in out

    def test_bench_json_no_baseline(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_pr.json"
        assert main(
            ["bench", "--workloads", "kdtree_lowdim", "--repeats", "1",
             "--json", str(json_path)]
        ) == 0
        payload = json.loads(json_path.read_text())
        assert "kdtree_lowdim" in payload["workloads"]

    def test_bench_regression_gate_fails(self, capsys, tmp_path):
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(
            json.dumps({"workloads": {bench.HEADLINE: {"speedup": 10_000.0}}})
        )
        code = main(
            ["bench", "--workloads", "engine_batch", "--repeats", "1",
             "--baseline", str(baseline_path)]
        )
        assert code == 1

    def test_bench_regression_gate_passes(self, capsys, tmp_path):
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(
            json.dumps({"workloads": {bench.HEADLINE: {"speedup": 0.001}}})
        )
        assert main(
            ["bench", "--workloads", "engine_batch", "--repeats", "1",
             "--baseline", str(baseline_path)]
        ) == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_bench_missing_baseline_one_line_error(self, capsys, tmp_path):
        missing = tmp_path / "nope" / "BENCH_baseline.json"
        code = main(["bench", "--workloads", "kdtree_lowdim", "--repeats", "1",
                     "--baseline", str(missing)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read baseline")
        assert "Traceback" not in err

    def test_bench_malformed_baseline_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_baseline.json"
        bad.write_text("{not json")
        code = main(["bench", "--workloads", "kdtree_lowdim", "--repeats", "1",
                     "--baseline", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: baseline") and "not valid JSON" in err

    def test_bench_wrong_shape_baseline_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_baseline.json"
        bad.write_text(json.dumps({"workloads": 3}))
        code = main(["bench", "--workloads", "kdtree_lowdim", "--repeats", "1",
                     "--baseline", str(bad)])
        assert code == 2
        assert "not a BENCH payload" in capsys.readouterr().err

    def test_explain_solver_portfolio(self, capsys):
        assert main(
            ["explain", "--dimension", "6", "--size", "12", "--seed", "3",
             "--solver", "portfolio", "--budget", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "minimum sufficient reason" in out
        assert "portfolio attempt" in out
        assert "exact=True" in out

    def test_explain_solver_sat(self, capsys):
        assert main(
            ["explain", "--dimension", "6", "--size", "12", "--seed", "3",
             "--solver", "sat"]
        ) == 0
        out = capsys.readouterr().out
        assert "method=sat" in out

    def test_figure_budget_flag(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_fig6a.json"
        assert main(
            ["figure", "fig6a", "--repeats", "2", "--seed", "1",
             "--budget", "60", "--json", str(json_path)]
        ) == 0
        payload = json.loads(json_path.read_text())
        assert all("truncated" in row for row in payload["rows"])
