"""Tests for the complexity registry, experiment harness, and CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.complexity import ENTRIES, Problem, Space, lookup, render_table
from repro.experiments.figures import ALL_FIGURES, figure5_workload, figure6_workload
from repro.experiments.runner import SweepResult, run_sweep, time_callable
from repro.experiments.tables import render_results_table, render_table1


class TestComplexityRegistry:
    def test_every_cell_resolvable(self):
        for problem in Problem:
            for space in Space:
                for k in (1, 3):
                    entry = lookup(problem, space, k)
                    assert entry.complexity
                    assert entry.provenance

    def test_table1_paper_values(self):
        """Spot-check the registry against the paper's Table 1."""
        assert lookup(Problem.COUNTERFACTUAL, Space.L2, 5).complexity == "P"
        assert lookup(Problem.COUNTERFACTUAL, Space.L1, 1).complexity == "NP-complete"
        assert lookup(Problem.CHECK_SR, Space.L1, 3).complexity == "coNP-complete"
        assert lookup(Problem.CHECK_SR, Space.HAMMING, 1).complexity == "P"
        assert lookup(Problem.MINIMUM_SR, Space.HAMMING, 3).complexity == "Sigma2p-complete"
        assert "open" in lookup(Problem.MINIMUM_SR, Space.L1, 3).complexity

    def test_render_table_mentions_all_spaces(self):
        table = render_table()
        for space in Space:
            assert space.value in table
        assert "Theorem 2" in table
        assert table == render_table1()

    def test_entries_have_solver_pointers(self):
        for entry in ENTRIES:
            assert entry.solver.startswith("repro.")


class TestRunner:
    def test_time_callable(self):
        timing = time_callable(lambda: sum(range(1000)), repeats=2)
        assert timing["repeats"] == 2
        assert timing["min"] <= timing["median"] <= timing["max"]

    def test_run_sweep_and_series(self):
        grid = [{"n": n, "N": N} for n in (1, 2) for N in (10, 20)]
        result = run_sweep("demo", grid, lambda p: (lambda: p["n"] * p["N"]), repeats=1)
        assert len(result.rows) == 4
        series = result.series("n", "N")
        assert set(series) == {10, 20}
        assert series[10][0] == [1, 2]

    def test_render_results_table(self):
        result = SweepResult("demo")
        result.add({"n": 1, "N": 10}, {"median": 0.001, "min": 0.001, "max": 0.001, "repeats": 1})
        result.add({"n": 2, "N": 10}, {"median": 0.002, "min": 0.002, "max": 0.002, "repeats": 1})
        text = render_results_table(result)
        assert "demo" in text
        assert "1.0ms" in text and "2.0ms" in text


class TestFigureWorkloads:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {"fig5a", "fig5b", "fig6a", "fig6b"}
        for spec in ALL_FIGURES.values():
            grid = list(spec.grid())
            assert grid and all("n" in p and "N" in p for p in grid)

    def test_figure5_task_runs(self, rng):
        task = figure5_workload(rng, 8, 10, method="hamming-milp")
        result = task()
        assert result.found

    def test_figure5_sat_task_runs(self, rng):
        task = figure5_workload(rng, 8, 10, method="hamming-sat")
        assert task().found

    def test_figure6_tasks_run(self, rng):
        msr = figure6_workload(rng, 6, 8, task_kind="msr-l1")()
        assert isinstance(msr, frozenset)
        cf = figure6_workload(rng, 6, 8, task_kind="cf-l2")()
        assert cf.found

    def test_figure6_bad_kind(self, rng):
        with pytest.raises(ValueError):
            figure6_workload(rng, 6, 8, task_kind="nope")


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "(R, D_2)" in out

    def test_explain(self, capsys):
        assert main(["explain", "--dimension", "6", "--size", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "minimal sufficient reason" in out
        assert "counterfactual" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig9z"]) == 2

    def test_figure_tiny_run(self, capsys):
        # Shrink the grid by monkey-free means: run the smallest figure with
        # one repeat; fig6a's smallest cells are fast enough for a test.
        assert main(["figure", "fig6a", "--repeats", "1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out
