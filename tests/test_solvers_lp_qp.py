"""Tests for the LP façade and the active-set QP projection solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.exceptions import InfeasibleError, UnboundedError
from repro.solvers.lp import feasible_point_strict, solve_lp
from repro.solvers.qp import project_onto_polyhedron


class TestSolveLP:
    def test_simple_min(self):
        # min x0 + x1 s.t. x0 >= 1, x1 >= 2  -> 3
        res = solve_lp([1.0, 1.0], A_ub=[[-1.0, 0.0], [0.0, -1.0]], b_ub=[-1.0, -2.0])
        assert res.optimal
        assert res.value == pytest.approx(3.0)

    def test_variables_are_free_by_default(self):
        # min x s.t. x <= -5 must reach -5 (not be clipped at 0).
        res = solve_lp([-1.0], A_ub=[[1.0]], b_ub=[-5.0])
        assert res.value == pytest.approx(5.0)
        assert res.x[0] == pytest.approx(-5.0)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            solve_lp([1.0], A_ub=[[1.0], [-1.0]], b_ub=[0.0, -1.0])

    def test_infeasible_soft(self):
        res = solve_lp(
            [1.0], A_ub=[[1.0], [-1.0]], b_ub=[0.0, -1.0], raise_on_infeasible=False
        )
        assert res.status == "infeasible"

    def test_unbounded_raises(self):
        with pytest.raises(UnboundedError):
            solve_lp([1.0])  # min x over all of R

    def test_equalities(self):
        res = solve_lp([1.0, 0.0], A_eq=[[1.0, 1.0]], b_eq=[4.0], bounds=(0, None))
        assert res.value == pytest.approx(0.0)


class TestStrictFeasibility:
    def test_open_interval(self):
        # 0 < x < 1
        point = feasible_point_strict(
            A_strict=[[1.0], [-1.0]], b_strict=[1.0, 0.0]
        )
        assert point is not None
        assert 0.0 < point[0] < 1.0

    def test_single_point_not_strictly_feasible(self):
        # x <= 0 and x < 0 is feasible; x >= 0 and x < 0 is not.
        assert (
            feasible_point_strict(
                A_ub=[[-1.0]], b_ub=[0.0], A_strict=[[1.0]], b_strict=[0.0]
            )
            is None
        )
        point = feasible_point_strict(A_ub=[[1.0]], b_ub=[0.0], A_strict=[[1.0]], b_strict=[0.0])
        assert point is not None and point[0] < 0

    def test_with_equalities(self):
        point = feasible_point_strict(
            A_strict=[[1.0, 0.0]],
            b_strict=[1.0],
            A_eq=[[0.0, 1.0]],
            b_eq=[7.0],
        )
        assert point is not None
        assert point[0] < 1.0
        assert point[1] == pytest.approx(7.0)

    def test_no_strict_part_reduces_to_lp(self):
        point = feasible_point_strict(A_ub=[[1.0]], b_ub=[5.0])
        assert point is not None and point[0] <= 5.0 + 1e-9

    def test_infeasible_weak_part(self):
        assert feasible_point_strict(A_ub=[[1.0], [-1.0]], b_ub=[0.0, -1.0]) is None


def scipy_reference_projection(x, A, b):
    """Reference QP via scipy's SLSQP on the same problem."""
    x = np.asarray(x, float)
    res = minimize(
        lambda y: np.sum((y - x) ** 2),
        x0=np.zeros_like(x),
        jac=lambda y: 2 * (y - x),
        constraints=[{"type": "ineq", "fun": lambda y, A=A, b=b: b - A @ y}],
        method="SLSQP",
        options={"maxiter": 300, "ftol": 1e-12},
    )
    return res.x, float(np.sum((res.x - x) ** 2))


class TestProjection:
    def test_interior_point_is_fixed(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([10.0, 10.0])
        y, d2 = project_onto_polyhedron([1.0, 1.0], A, b)
        np.testing.assert_allclose(y, [1.0, 1.0])
        assert d2 == pytest.approx(0.0)

    def test_single_halfspace(self):
        # Project (2, 0) onto x0 <= 1: lands on (1, 0), distance^2 = 1.
        y, d2 = project_onto_polyhedron([2.0, 0.0], [[1.0, 0.0]], [1.0])
        np.testing.assert_allclose(y, [1.0, 0.0], atol=1e-8)
        assert d2 == pytest.approx(1.0)

    def test_corner_projection(self):
        # Box x <= 0, y <= 0; project (3, 4) -> origin.
        y, d2 = project_onto_polyhedron([3.0, 4.0], [[1.0, 0.0], [0.0, 1.0]], [0.0, 0.0])
        np.testing.assert_allclose(y, [0.0, 0.0], atol=1e-8)
        assert d2 == pytest.approx(25.0)

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            project_onto_polyhedron([0.0], [[1.0], [-1.0]], [0.0, -1.0])

    def test_no_constraints(self):
        y, d2 = project_onto_polyhedron([1.0, 2.0], np.empty((0, 2)), np.empty(0))
        np.testing.assert_allclose(y, [1.0, 2.0])
        assert d2 == 0.0

    def test_zero_rows_are_screened(self):
        y, d2 = project_onto_polyhedron([1.0], [[0.0]], [1.0])
        assert d2 == 0.0
        with pytest.raises(InfeasibleError):
            project_onto_polyhedron([1.0], [[0.0]], [-1.0])

    @given(
        seed=st.integers(0, 50_000),
        n=st.integers(1, 5),
        m=st.integers(1, 10),
    )
    @settings(max_examples=50)
    def test_matches_scipy_on_random_feasible_problems(self, seed, n, m):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, n))
        interior = rng.normal(size=n)
        b = A @ interior + rng.uniform(0.1, 2.0, size=m)  # interior is feasible
        x = rng.normal(size=n) * 3
        y, d2 = project_onto_polyhedron(x, A, b)
        assert np.all(A @ y <= b + 1e-7)
        _, d2_ref = scipy_reference_projection(x, A, b)
        # Ours must be at least as good as the reference (both near-exact).
        assert d2 <= d2_ref + 1e-6

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=30)
    def test_projection_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(6, 3))
        b = A @ rng.normal(size=3) + rng.uniform(0.1, 1.0, size=6)
        x = rng.normal(size=3) * 4
        y, _ = project_onto_polyhedron(x, A, b)
        y2, d2 = project_onto_polyhedron(y, A, b)
        assert d2 == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(y2, y, atol=1e-6)
