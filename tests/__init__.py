"""Test package marker: lets test modules use ``from .helpers import ...``."""
