"""Tests for Proposition-1 witnesses (repro.knn.certificates)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn import Dataset, KNNClassifier, Witness, find_witness, verify_witness

from .helpers import random_continuous_dataset, random_discrete_dataset


class TestWitnessConstruction:
    def test_positive_witness(self):
        data = Dataset([[0.0], [1.0]], [[5.0]])
        clf = KNNClassifier(data, k=3)
        w = find_witness(clf, [0.0])
        assert w.label == 1
        assert len(w.A) == 2  # (k+1)/2
        assert verify_witness(clf, [0.0], w)

    def test_negative_witness(self):
        data = Dataset([[5.0]], [[0.0], [1.0]])
        clf = KNNClassifier(data, k=3)
        w = find_witness(clf, [0.0])
        assert w.label == 0
        assert verify_witness(clf, [0.0], w)

    def test_invalid_label_rejected(self):
        with pytest.raises(Exception):
            Witness(label=2, A=(0,), B=())

    def test_verify_rejects_wrong_indices(self):
        data = Dataset([[0.0]], [[5.0]])
        clf = KNNClassifier(data, k=1)
        bad = Witness(label=1, A=(7,), B=())
        assert not verify_witness(clf, [0.0], bad)

    def test_verify_rejects_oversized_b(self):
        data = Dataset([[0.0]], [[5.0], [6.0]])
        clf = KNNClassifier(data, k=1)
        bad = Witness(label=1, A=(0,), B=(0, 1))  # |B| > (k-1)/2 = 0
        assert not verify_witness(clf, [0.0], bad)

    def test_verify_rejects_false_claim(self):
        data = Dataset([[0.0]], [[5.0]])
        clf = KNNClassifier(data, k=1)
        # Claim x=4.9 is positive with no excused negatives: false, the
        # negative at 5.0 is strictly closer than the positive at 0.0.
        bad = Witness(label=1, A=(0,), B=())
        assert not verify_witness(clf, [4.9], bad)


class TestWitnessProperty:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 4),
        m_pos=st.integers(1, 5),
        m_neg=st.integers(1, 5),
        k=st.sampled_from([1, 3, 5]),
        discrete=st.booleans(),
    )
    @settings(max_examples=80)
    def test_found_witness_always_verifies(self, seed, n, m_pos, m_neg, k, discrete):
        if m_pos + m_neg < k:
            return
        rng = np.random.default_rng(seed)
        if discrete:
            data = random_discrete_dataset(rng, n, m_pos, m_neg)
            metric = "hamming"
            x = rng.integers(0, 2, size=n).astype(float)
        else:
            data = random_continuous_dataset(rng, n, m_pos, m_neg, integer=True)
            metric = "l2"
            x = rng.integers(-4, 5, size=n).astype(float)
        clf = KNNClassifier(data, k=k, metric=metric)
        w = find_witness(clf, x)
        assert w.label == clf.classify(x)
        assert verify_witness(clf, x, w)

    @given(
        seed=st.integers(0, 10_000),
        k=st.sampled_from([1, 3]),
    )
    @settings(max_examples=40)
    def test_witness_with_multiplicities(self, seed, k):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(2, 2))
        neg = rng.normal(size=(2, 2))
        data = Dataset(
            pos,
            neg,
            positive_multiplicities=rng.integers(1, 3, size=2),
            negative_multiplicities=rng.integers(1, 3, size=2),
        )
        if len(data) < k:
            return
        clf = KNNClassifier(data, k=k)
        x = rng.normal(size=2)
        w = find_witness(clf, x)
        assert verify_witness(clf, x, w)
