"""Observability layer: Prometheus rendering, merging, logs, and /metrics.

Covers the stdlib metric primitives (counter/gauge/histogram and the
text exposition format), the cross-process state merge the cluster
front relies on, the structured JSON logger with provenance ids, and
the ``GET /metrics`` endpoint on both serving topologies.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.knn import Dataset
from repro.serve import (
    PROMETHEUS_CONTENT_TYPE,
    ExplanationService,
    MetricsRegistry,
    StructuredLogger,
    new_request_id,
    render_states,
    serve_http,
)

# -- primitives ------------------------------------------------------------


def test_counter_renders_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("repro_things_total", "Things.", ("kind",))
    c.labels(kind="a").inc()
    c.labels(kind="a").inc(2)
    c.labels(kind="b").inc()
    text = reg.render()
    assert '# TYPE repro_things_total counter' in text
    assert 'repro_things_total{kind="a"} 3' in text
    assert 'repro_things_total{kind="b"} 1' in text
    with pytest.raises(ValueError):
        c.labels(kind="a").inc(-1)


def test_label_mismatch_and_kind_conflict_raise():
    reg = MetricsRegistry()
    c = reg.counter("repro_x_total", "X.", ("op",))
    with pytest.raises(ValueError):
        c.labels(wrong="a")
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total")  # already registered as a counter
    # get-or-create returns the same object for the same name.
    assert reg.counter("repro_x_total") is c


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.gauge("repro_g", "G.", ("path",)).set(1, path='a"b\\c\nd')
    assert r'path="a\"b\\c\nd"' in reg.render()


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("repro_h_seconds", "H.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    text = reg.render()
    assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_h_seconds_bucket{le="1"} 2' in text
    assert 'repro_h_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_h_seconds_count 3" in text
    assert "repro_h_seconds_sum 5.55" in text


def test_render_states_merges_across_registries():
    # Two "worker processes": counters sum, histogram buckets add up,
    # and worker-labeled gauges stay distinct series.
    a, b = MetricsRegistry(), MetricsRegistry()
    for index, reg in enumerate((a, b)):
        reg.counter("repro_req_total", "R.").inc(10)
        reg.histogram("repro_lat_seconds", "L.", buckets=(1.0,)).observe(0.5)
        reg.gauge("repro_depth", "D.", ("worker",)).set(index + 1, worker=str(index))
    text = render_states([a.state(), b.state()])
    assert "repro_req_total 20" in text
    assert 'repro_lat_seconds_bucket{le="1"} 2' in text
    assert "repro_lat_seconds_count 2" in text
    assert 'repro_depth{worker="0"} 1' in text
    assert 'repro_depth{worker="1"} 2' in text
    # States survive a JSON round trip (they cross a pipe in production).
    assert render_states([json.loads(json.dumps(a.state()))])


def test_set_total_mirrors_external_counters():
    reg = MetricsRegistry()
    c = reg.counter("repro_hits_total", "H.", ("outcome",))
    c.set_total(41, outcome="hit")
    c.set_total(42, outcome="hit")  # overwrite, not add: mirrors stats()
    assert 'repro_hits_total{outcome="hit"} 42' in reg.render()


# -- structured logs -------------------------------------------------------


def test_structured_logger_writes_json_lines():
    stream = io.StringIO()
    log = StructuredLogger(stream, component="test")
    log.log("hello", level="warning", base="abc", n=3)
    record = json.loads(stream.getvalue())
    assert record["event"] == "hello"
    assert record["level"] == "warning"
    assert record["component"] == "test"
    assert record["n"] == 3 and record["base"] == "abc"
    assert "ts" in record


def test_silent_logger_and_closed_stream_never_raise():
    silent = StructuredLogger(None)
    assert not silent.enabled
    silent.log("nothing")  # no-op
    stream = io.StringIO()
    log = StructuredLogger(stream)
    stream.close()
    log.log("after-close")  # swallowed, not raised


def test_logger_serializes_unjsonable_fields():
    stream = io.StringIO()
    StructuredLogger(stream).log("x", arr=np.arange(2))
    assert json.loads(stream.getvalue())["arr"] == "[0 1]"


def test_request_ids_are_unique():
    ids = {new_request_id() for _ in range(100)}
    assert len(ids) == 100


# -- service + HTTP integration -------------------------------------------


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def data(rng):
    return Dataset(rng.normal(size=(15, 3)), rng.normal(size=(15, 3)))


def _serve(service):
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


REQUIRED_SERIES = (
    "repro_request_latency_seconds_bucket",
    "repro_batch_occupancy_bucket",
    "repro_cache_requests_total",
    "repro_requests_total",
    "repro_datasets",
    "repro_solver_pool_requests_total",
    "repro_portfolio_races_total",
)


def test_single_process_metrics_page(rng, data, tmp_path):
    service = ExplanationService(state_dir=tmp_path / "state")
    fp = service.add_dataset(data)
    service.submit(fp, "classify", rng.normal(size=3), k=3)
    service.add_points(fp, rng.normal(size=(2, 3)), [1, -1])
    server = _serve(service)
    try:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url) as response:
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode()
        for series in REQUIRED_SERIES:
            assert series in text, series
        # Durability series appear because the service has a state dir.
        assert "repro_wal_fsync_seconds_bucket" in text
        assert 'repro_wal_appends_total{op="add"} 1' in text
        assert 'repro_cache_requests_total{outcome="miss"} 1' in text
        # The versioned alias answers the same page.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/v2/metrics"
        ) as response:
            assert response.status == 200
    finally:
        server.shutdown()


def test_metrics_page_is_parseable_prometheus(rng, data):
    # Minimal exposition-format validation: every non-comment line is
    # "<name>{labels} <float>", every series has a # TYPE header.
    service = ExplanationService()
    fp = service.add_dataset(data)
    service.submit(fp, "margin", rng.normal(size=3), k=3)
    typed = set()
    for line in service.metrics_text().splitlines():
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        if line.startswith("#") or not line:
            continue
        name, value = line.rsplit(" ", 1)
        metric = name.split("{")[0]
        float(value)  # must parse
        family = metric
        for suffix in ("_bucket", "_sum", "_count"):
            if metric.endswith(suffix) and family.removesuffix(suffix) in typed:
                family = metric.removesuffix(suffix)
        assert family in typed, f"series {metric} has no TYPE header"


def test_cluster_metrics_page(rng, data):
    from repro.serve import ClusterService

    cluster = ClusterService(workers=2)
    fp = cluster.add_dataset(data)
    cluster.explain(fp, "classify", [rng.normal(size=3)], {"k": 3})
    server = _serve(cluster)
    try:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url) as response:
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode()
        for series in REQUIRED_SERIES:
            assert series in text, series
        # Front-only series with per-worker labels.
        assert 'repro_worker_alive{worker="0"} 1' in text
        assert 'repro_worker_alive{worker="1"} 1' in text
        assert "repro_cluster_dispatched_total 1" in text
    finally:
        server.shutdown()


def test_response_carries_request_id_and_honors_callers(data):
    service = ExplanationService()
    server = _serve(service)
    try:
        url = f"http://127.0.0.1:{server.port}/healthz"
        with urllib.request.urlopen(url) as response:
            generated = response.headers["X-Request-ID"]
            assert generated and "-" in generated
        request = urllib.request.Request(url, headers={"X-Request-ID": "my-trace-7"})
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Request-ID"] == "my-trace-7"
    finally:
        server.shutdown()


def test_http_access_log_threads_request_id(rng, data):
    stream = io.StringIO()
    service = ExplanationService(log_stream=stream)
    fp = service.add_dataset(data)
    server = _serve(service)
    try:
        url = f"http://127.0.0.1:{server.port}/v2/explain"
        body = json.dumps({
            "fingerprint": fp, "method": "classify",
            "instances": [rng.normal(size=3).tolist()], "params": {"k": 3},
        }).encode()
        request = urllib.request.Request(
            url, data=body,
            headers={"Content-Type": "application/json",
                     "X-Request-ID": "trace-42"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Request-ID"] == "trace-42"
    finally:
        server.shutdown()
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    http = [r for r in records if r["event"] == "http_request"]
    served = [r for r in records if r["event"] == "explain_served"]
    # The same provenance id appears at the HTTP front *and* in the
    # serving layer's record — that is the front→worker→solver thread.
    assert http and http[0]["request_id"] == "trace-42"
    assert http[0]["status"] == 200 and http[0]["verb"] == "POST"
    assert served and served[0]["request_id"] == "trace-42"


def test_stats_and_metrics_agree(rng, data):
    service = ExplanationService()
    fp = service.add_dataset(data)
    for _ in range(3):
        service.submit(fp, "classify", rng.normal(size=3), k=3)
    stats = service.stats()
    text = service.metrics_text()
    assert f"repro_requests_total {stats['requests']}" in text
    assert (
        f"repro_cache_requests_total{{outcome=\"hit\"}} {stats['cache']['hits']}"
        in text
    )
    assert (
        f"repro_solver_pool_requests_total{{outcome=\"hit\"}} "
        f"{stats['solver_pool']['hits']}" in text
    )
    assert (
        f"repro_portfolio_races_total{{mode=\"parallel\"}} "
        f"{stats['portfolio']['parallel']}" in text
    )
