"""Multiclass differential oracle suite: every answer ≡ merged-binary.

The paper's final remarks reduce multi-label classification (``k = 1``)
to the binary case by merging every other label into one negative
class.  The tentpole contract is that the shared
:class:`~repro.knn.MultiClassEngine` — one joint index, no per-class
copies — reproduces that reduction **bit for bit**: per-class radii,
one-vs-rest margins, predicted labels (including Proposition 1
distance-tie behavior and the ``favor`` rule), sufficient-reason and
counterfactual witnesses must all equal what the binary pipeline
computes on an *independently constructed* merged
:class:`~repro.knn.Dataset`, across every backend, both metrics, and
every applicable solver method.  All data is drawn from small integer
grids — the regime where the repo's exactness contract makes
"bit-identical" a meaningful demand, and where distance ties (the
Proposition 1 case) occur constantly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abductive import (
    check_sufficient_reason,
    minimal_sufficient_reason,
    minimum_sufficient_reason,
)
from repro.counterfactual import closest_counterfactual
from repro.knn import (
    Dataset,
    MultiClass1NN,
    MultiClassDataset,
    MultiClassEngine,
    QueryEngine,
)
from repro.knn.reference import (
    classify_weighted_by_definition,
    multiclass_classify_by_definition,
)

#: every backend crossed with both metrics it supports (bitpack is
#: Hamming-only by construction) — the same grid the fuzz harness runs.
CONFIGS = [
    ("dense", "l2"),
    ("dense", "hamming"),
    ("kdtree", "l2"),
    ("kdtree", "hamming"),
    ("bitpack", "hamming"),
    ("ivf", "l2"),
    ("ivf", "hamming"),
]

#: differential seeds per configuration (each seed is a fresh dataset).
SEEDS = range(5)


def _random_grid(rng, count, dim, metric):
    """Integer-grid points: binary for Hamming, {0,1,2} for l2 (tie-rich)."""
    high = 2 if metric == "hamming" else 3
    return rng.integers(0, high, size=(count, dim)).astype(float)


def _random_multiclass(rng, metric, *, n_classes=3, size=13, dim=None, weighted=True):
    """A random labeled grid dataset with every class inhabited.

    ``weighted=False`` skips multiplicities — the SR/CF witness tests
    need the facade's merged view and the independent oracle dataset to
    agree row for row, and expanding multiplicities would reorder them.
    """
    dim = dim if dim is not None else (5 if metric == "hamming" else 4)
    points = _random_grid(rng, size, dim, metric)
    labels = rng.integers(0, n_classes, size=size)
    labels[:n_classes] = np.arange(n_classes)  # every class present
    mult = rng.integers(1, 3, size=size) if weighted else None
    return MultiClassDataset(points, labels, multiplicities=mult)


def _independent_merged(data: MultiClassDataset, label: int) -> Dataset:
    """The one-vs-rest binary dataset, built WITHOUT the library's merge.

    Reconstructs ``label`` vs everything-else directly from the class
    accessors (classes ascending, rows in insertion order) so the oracle
    cannot share a code path — or a bug — with
    :meth:`MultiClassDataset.merged`.
    """
    rest = [c for c in data.classes if c != label]
    return Dataset(
        data.class_points(label),
        np.vstack([data.class_points(c) for c in rest]),
        positive_multiplicities=data.class_multiplicities(label),
        negative_multiplicities=np.concatenate(
            [data.class_multiplicities(c) for c in rest]
        ),
        discrete=data.discrete,
    )


# -- per-class radii, margins, classification vs merged binary ----------


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_per_class_radii_and_margins_match_merged_binary(backend, metric):
    """class_radii/margins ≡ the binary engine on each merged dataset."""
    ties = 0
    for seed in SEEDS:
        rng = np.random.default_rng(seed)
        data = _random_multiclass(rng, metric)
        engine = MultiClassEngine(data, metric, backend=backend)
        queries = _random_grid(rng, 6, data.dimension, metric)
        for k in (1, 3):
            radii, rest = engine.class_radii_batch(queries, k)
            margins = engine.class_margins_batch(queries, k)
            for j, label in enumerate(data.classes):
                merged = QueryEngine(
                    _independent_merged(data, label), metric, backend=backend
                )
                r_pos, r_neg = merged.radii_batch(queries, k)
                np.testing.assert_array_equal(radii[:, j], r_pos)
                np.testing.assert_array_equal(rest[:, j], r_neg)
                np.testing.assert_array_equal(
                    margins[:, j], merged.margins_batch(queries, k)
                )
                np.testing.assert_array_equal(
                    engine.radii_batch(queries, k, label)[0], r_pos
                )
                # Single-query paths agree with the binary single-query
                # (row-wise, exact-boundary) kernel, point for point.
                for x in queries[:2]:
                    assert engine.radii(x, k, label) == merged.radii(x, k)
                    assert engine.margin(x, k, label) == merged.margin(x, k)
                ties += int(np.sum((r_pos == r_neg) & np.isfinite(r_pos)))
    # Vacuity guard: the grids must exercise the Proposition 1 tie case.
    assert ties > 0


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_classification_matches_brute_reference(backend, metric):
    """Uniform and distance votes ≡ the definition-based oracle."""
    for seed in SEEDS:
        rng = np.random.default_rng(100 + seed)
        data = _random_multiclass(rng, metric)
        engine = MultiClassEngine(data, metric, backend=backend)
        queries = _random_grid(rng, 6, data.dimension, metric)
        for k in (1, 3):
            for vote in ("uniform", "distance"):
                for favor in (None, *data.classes):
                    got = engine.classify_batch(queries, k, favor=favor, vote=vote)
                    want = [
                        multiclass_classify_by_definition(
                            data, k, metric, x, vote=vote, favor=favor
                        )
                        for x in queries
                    ]
                    np.testing.assert_array_equal(got, want)
                    for x in queries[:2]:
                        assert engine.classify(
                            x, k, favor=favor, vote=vote
                        ) == multiclass_classify_by_definition(
                            data, k, metric, x, vote=vote, favor=favor
                        )


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_k1_favor_rule_equals_merged_binary_positive(backend, metric):
    """``classify(x, favor=c) == c`` iff the merged binary problem says 1.

    This is the documented correctness contract of the merge reduction:
    "class c vs rest" counts boundary points as class c, so optimistic
    binary positivity and favor-c multiclass classification coincide.
    """
    for seed in SEEDS:
        rng = np.random.default_rng(200 + seed)
        data = _random_multiclass(rng, metric)
        engine = MultiClassEngine(data, metric, backend=backend)
        queries = _random_grid(rng, 8, data.dimension, metric)
        for label in data.classes:
            merged = QueryEngine(
                _independent_merged(data, label), metric, backend=backend
            )
            for x in queries:
                favored = engine.classify(x, 1, favor=label) == label
                assert favored == (merged.classify(x, 1) == 1)


def test_binary_weighted_vote_matches_reference():
    """The engine's ``vote="distance"`` ≡ the weighted brute oracle."""
    for seed in SEEDS:
        rng = np.random.default_rng(300 + seed)
        data = Dataset(
            _random_grid(rng, 8, 4, "l2"), _random_grid(rng, 8, 4, "l2")
        )
        engine = QueryEngine(data, "l2")
        queries = _random_grid(rng, 8, 4, "l2")
        for k in (1, 3):
            got = engine.classify_batch(queries, k, vote="distance")
            want = [
                classify_weighted_by_definition(data, k, "l2", x) for x in queries
            ]
            np.testing.assert_array_equal(got, want)


# -- constructed Proposition 1 ties -------------------------------------


def test_constructed_tie_order_and_favor():
    """Exact equidistant classes: tie order, favor, and radii equality."""
    # x = origin sits exactly 2.0 (squared) from one point of each class.
    points = [[2, 0], [0, 2], [-2, 0], [5, 5], [-5, 5], [0, -5]]
    labels = [0, 1, 2, 0, 1, 2]
    data = MultiClassDataset(points, labels)
    engine = MultiClassEngine(data, "l2")
    x = [0.0, 0.0]
    radii, rest = engine.class_radii(x, 1)
    assert radii[0] == radii[1] == radii[2] == 4.0
    np.testing.assert_array_equal(rest, [4.0, 4.0, 4.0])
    assert engine.classify(x, 1) == 0  # smallest label wins the tie
    for favor in (0, 1, 2):
        assert engine.classify(x, 1, favor=favor) == favor
    # ... and each merged binary problem sees the Proposition 1 tie as 1.
    for label in data.classes:
        merged = QueryEngine(_independent_merged(data, label), "l2")
        assert merged.radii(x, 1) == (4.0, 4.0)
        assert merged.classify(x, 1) == 1


# -- solver-method witness parity ---------------------------------------

#: Minimum-SR pipelines applicable per metric (k = 1 throughout).
MINIMUM_SR_METHODS = {
    "hamming": ("auto", "brute", "milp", "sat", "portfolio"),
    "l2": ("auto", "brute", "portfolio"),
}

#: counterfactual pipelines applicable per metric.
COUNTERFACTUAL_METHODS = {
    "hamming": ("auto", "hamming-milp", "hamming-sat", "hamming-brute", "portfolio"),
    "l2": ("auto", "l2-qp", "portfolio"),
}


@pytest.mark.parametrize("metric", ["hamming", "l2"])
def test_sr_witnesses_match_merged_binary(metric):
    """Minimal and minimum SRs ≡ the binary pipelines on merged data."""
    for seed in range(3):
        rng = np.random.default_rng(400 + seed)
        data = _random_multiclass(rng, metric, size=10, weighted=False)
        clf = MultiClass1NN(data.points, data.row_labels, metric)
        x = _random_grid(rng, 1, data.dimension, metric)[0]
        label = clf.classify(x)
        merged = _independent_merged(data, label)
        want_minimal = minimal_sufficient_reason(merged, 1, metric, x)
        assert clf.minimal_sufficient_reason(x) == want_minimal
        assert clf.check_sufficient_reason(x, want_minimal)
        assert check_sufficient_reason(merged, 1, metric, x, want_minimal)
        shared = clf.engine.merged_engine(label)
        for method in MINIMUM_SR_METHODS[metric]:
            got = minimum_sufficient_reason(
                shared.dataset, 1, metric, x, method=method, engine=shared
            )
            want = minimum_sufficient_reason(merged, 1, metric, x, method=method)
            assert got.X == want.X, (seed, method)
            assert got.size == want.size


@pytest.mark.parametrize("metric", ["hamming", "l2"])
def test_counterfactual_witnesses_match_merged_binary(metric):
    """Targeted and untargeted CFs ≡ the binary pipeline on merged data."""
    for seed in range(3):
        rng = np.random.default_rng(500 + seed)
        data = _random_multiclass(rng, metric, size=10, weighted=False)
        clf = MultiClass1NN(data.points, data.row_labels, metric)
        x = _random_grid(rng, 1, data.dimension, metric)[0]
        label = clf.classify(x)
        targets = [None] + [c for c in data.classes if c != label]
        for target in targets:
            merged = _independent_merged(data, label if target is None else target)
            for method in COUNTERFACTUAL_METHODS[metric]:
                got = clf.closest_counterfactual(x, target=target, method=method)
                want = closest_counterfactual(merged, 1, metric, x, method=method)
                assert got.found == want.found, (seed, target, method)
                assert got.distance == want.distance
                assert got.label_from == want.label_from
                if want.y is None:
                    assert got.y is None
                else:
                    np.testing.assert_array_equal(got.y, want.y)


def test_multiclass_engine_rejects_bad_vote_and_label():
    """Engine-level validation: unknown vote modes and labels raise."""
    from repro.exceptions import ValidationError

    data = MultiClassDataset([[0.0], [1.0], [2.0]], [0, 1, 2])
    engine = MultiClassEngine(data, "l2")
    with pytest.raises(ValidationError):
        engine.classify([0.0], 3, vote="plurality")
    with pytest.raises(ValidationError):
        engine.radii([0.0], 1, 9)
    with pytest.raises(ValidationError):
        engine.classify([0.0], 1, favor=9)
