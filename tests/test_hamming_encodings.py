"""Unit tests for the Section 9.2 encoding internals."""

from __future__ import annotations

import math
from itertools import product

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counterfactual.hamming_milp import _hamming_terms
from repro.counterfactual.hamming_sat import add_distance_bound, build_flip_encoding
from repro.knn import KNNClassifier

from .helpers import random_discrete_dataset


class TestHammingTerms:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 8))
    @settings(max_examples=30)
    def test_linearization_exact(self, seed, n):
        rng = np.random.default_rng(seed)
        z = rng.integers(0, 2, size=n).astype(float)
        y = rng.integers(0, 2, size=n).astype(float)
        constant, coeff = _hamming_terms(z)
        assert constant + float(coeff @ y) == float(np.abs(z - y).sum())


class TestFlipEncoding:
    def _models_of(self, builder, y_vars):
        """All assignments of the y variables extendable to a model."""
        found = set()
        n = len(y_vars)
        for bits in product([0, 1], repeat=n):
            probe = builder.build_solver()
            for yv, b in zip(y_vars, bits):
                probe.add_clause([yv if b else -yv])
            if probe.solve() is not None:
                found.add(bits)
        return found

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_encoding_models_are_exactly_the_flipped_points(self, seed):
        """The y-projections of the encoding's models must be exactly the
        points of the opposite class region (k = 1 semantics)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        data = random_discrete_dataset(rng, n, int(rng.integers(1, 4)), int(rng.integers(1, 4)))
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        label = clf.classify(x)
        expanded = data.expanded()
        if label == 1:
            winning, losing, margin = expanded.negatives, expanded.positives, 1
        else:
            winning, losing, margin = expanded.positives, expanded.negatives, 0
        builder, y_vars = build_flip_encoding(x, winning, losing, margin)
        models = self._models_of(builder, y_vars)
        for bits in product([0, 1], repeat=n):
            point = np.array(bits, dtype=float)
            expected = clf.classify(point) != label
            assert ((bits in models) == expected), (bits, label)

    def test_distance_bound_restricts_models(self, rng):
        data = random_discrete_dataset(rng, 4, 2, 2)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=4).astype(float)
        label = clf.classify(x)
        expanded = data.expanded()
        winning = expanded.negatives if label == 1 else expanded.positives
        losing = expanded.positives if label == 1 else expanded.negatives
        builder, y_vars = build_flip_encoding(x, winning, losing, 1 if label else 0)
        add_distance_bound(builder, y_vars, x, 1)
        model = builder.build_solver().solve()
        if model is not None:
            y = np.array([1.0 if model[v] else 0.0 for v in y_vars])
            assert np.abs(y - x).sum() <= 1

    def test_cardinality_bound_formula(self):
        """The paper's bound: strict win over a rival with |Delta| diffs
        needs agreement on at least floor(|Delta|/2) + 1 of them."""
        for delta_size in range(1, 9):
            strict = math.ceil((delta_size + 1) / 2)
            assert strict == delta_size // 2 + 1
            weak = math.ceil(delta_size / 2)
            assert weak <= strict
