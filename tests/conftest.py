"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the suite contains many property-based tests;
# keep each one fast so the full suite stays interactive.
settings.register_profile(
    "suite",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile("suite")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20250123)
