"""Parity and provenance tests for the budgeted solver portfolio.

The portfolio's contract is *bit-identical exactness*: whatever exact
member wins the race, the answer must match every other exact pipeline
on the same instance — including the Proposition-1 optimistic tie cases
— and the incremental SAT sweeps must agree with their
rebuild-per-bound baselines on randomized instances.  Timeouts must
degrade to genuine (verified) anytime answers, never to garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    closest_counterfactual,
    minimum_sufficient_reason,
    portfolio_closest_counterfactual,
    portfolio_minimum_sufficient_reason,
)
from repro.abductive import check_sufficient_reason
from repro.abductive.minimum import MinimumSRResult, _minimum_sat_hamming_k1
from repro.counterfactual import CounterfactualResult
from repro.counterfactual.hamming_sat import closest_counterfactual_hamming_sat
from repro.datasets import random_boolean_dataset
from repro.exceptions import UnsupportedSettingError
from repro.knn import Dataset, QueryEngine


def _random_instance(seed, n_lo=5, n_hi=11, size_lo=6, size_hi=20):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi))
    size = int(rng.integers(size_lo, size_hi))
    data = random_boolean_dataset(rng, n, size)
    x = rng.integers(0, 2, size=n).astype(float)
    return data, x


class TestMinimumSRParity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_portfolio_matches_every_exact_method(self, seed):
        data, x = _random_instance(seed)
        engine = QueryEngine(data, "hamming")
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=30.0, engine=engine
        )
        assert race.exact
        sizes = {
            method: minimum_sufficient_reason(
                data, 1, "hamming", x, method=method, engine=engine
            ).size
            for method in ("milp", "sat", "brute")
        }
        assert len(set(sizes.values())) == 1, sizes
        assert race.answer.size == sizes["milp"]
        # Every winner's set is a genuine sufficient reason of that size.
        assert check_sufficient_reason(
            data, 1, "hamming", x, race.answer.X, engine=engine
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_incremental_sat_matches_rebuild(self, seed):
        data, x = _random_instance(seed)
        engine = QueryEngine(data, "hamming")
        incremental = _minimum_sat_hamming_k1(data, x, engine, incremental=True)
        rebuild = _minimum_sat_hamming_k1(data, x, engine, incremental=False)
        assert incremental.size == rebuild.size

    @pytest.mark.parametrize("strategy", ["binary", "linear"])
    def test_incremental_strategies_agree(self, strategy):
        data, x = _random_instance(99)
        engine = QueryEngine(data, "hamming")
        result = _minimum_sat_hamming_k1(
            data, x, engine, incremental=True, strategy=strategy
        )
        reference = minimum_sufficient_reason(
            data, 1, "hamming", x, method="milp", engine=engine
        )
        assert result.size == reference.size

    def test_proposition1_tie_case(self):
        # A point duplicated in both classes: optimistic ties favor
        # class 1, the classic Prop-1 edge.  All pipelines must agree.
        data = Dataset(
            positives=[[0, 0, 1], [1, 1, 1]],
            negatives=[[0, 0, 1], [1, 0, 0]],
        )
        x = np.array([0.0, 0.0, 1.0])
        engine = QueryEngine(data, "hamming")
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=30.0, engine=engine
        )
        assert race.exact
        for method in ("milp", "sat", "brute"):
            exact = minimum_sufficient_reason(
                data, 1, "hamming", x, method=method, engine=engine
            )
            assert exact.size == race.answer.size

    def test_dispatcher_portfolio_returns_plain_result(self):
        data, x = _random_instance(3)
        answer = minimum_sufficient_reason(
            data, 1, "hamming", x, method="portfolio", time_limit=30.0
        )
        assert isinstance(answer, MinimumSRResult)
        reference = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
        assert answer.size == reference.size

    def test_non_hamming_setting_races_brute_only(self):
        rng = np.random.default_rng(0)
        data = Dataset(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))
        x = rng.normal(size=3)
        race = portfolio_minimum_sufficient_reason(
            data, 1, "l2", x, budget=30.0
        )
        assert race.exact
        assert [a.method for a in race.attempts] == ["brute"]

    def test_all_members_inapplicable_raises_not_degrades(self):
        # Every member unsupported with no timeout is an input problem:
        # the racer must fail like the single-method entry points, never
        # hand back a silent greedy answer labelled as degradation.
        from repro.exceptions import ValidationError

        rng = np.random.default_rng(1)
        n = 24  # above max_brute_dimension: brute (the only l2 member) rejects
        data = Dataset(rng.normal(size=(4, n)), rng.normal(size=(5, n)))
        x = rng.normal(size=n)
        with pytest.raises(ValidationError):
            portfolio_minimum_sufficient_reason(data, 1, "l2", x, budget=30.0)


class TestMinimumSRFallback:
    def test_zero_budget_degrades_to_greedy(self):
        data, x = _random_instance(17)
        engine = QueryEngine(data, "hamming")
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=0.0, engine=engine
        )
        assert not race.exact
        assert race.method == "greedy-anytime"
        statuses = [a.status for a in race.attempts]
        assert statuses[:-1] == ["timeout"] * 3 and statuses[-1] == "anytime"
        # The anytime answer is still a genuine sufficient reason and an
        # upper bound on the optimum.
        assert check_sufficient_reason(
            data, 1, "hamming", x, race.answer.X, engine=engine
        )
        exact = minimum_sufficient_reason(data, 1, "hamming", x, engine=engine)
        assert race.answer.size >= exact.size

    def test_attempt_records_carry_budget_and_elapsed(self):
        data, x = _random_instance(21)
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=30.0
        )
        assert race.budget_s == 30.0
        assert race.elapsed_s >= 0.0
        assert all(a.elapsed_s >= 0.0 for a in race.attempts)
        assert race.attempts[-1].status == "exact"


class TestCounterfactualParity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_portfolio_matches_every_exact_method(self, seed):
        data, x = _random_instance(seed)
        engine = QueryEngine(data, "hamming")
        race = portfolio_closest_counterfactual(
            data, 1, "hamming", x, budget=30.0, query_engine=engine
        )
        assert race.exact
        distances = {
            method: closest_counterfactual(
                data, 1, "hamming", x, method=method, query_engine=engine
            ).distance
            for method in ("hamming-milp", "hamming-sat", "hamming-brute")
        }
        assert len(set(distances.values())) == 1, distances
        assert race.answer.distance == distances["hamming-milp"]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_incremental_sat_matches_rebuild(self, seed):
        data, x = _random_instance(seed)
        engine = QueryEngine(data, "hamming")
        incremental = closest_counterfactual_hamming_sat(
            data, 1, x, query_engine=engine, incremental=True
        )
        rebuild = closest_counterfactual_hamming_sat(
            data, 1, x, query_engine=engine, incremental=False
        )
        assert incremental.distance == rebuild.distance

    def test_zero_budget_degrades_to_nearest_training(self):
        data, x = _random_instance(31)
        engine = QueryEngine(data, "hamming")
        race = portfolio_closest_counterfactual(
            data, 1, "hamming", x, budget=0.0, query_engine=engine
        )
        assert not race.exact
        assert race.method == "nearest-training-anytime"
        answer = race.answer
        if answer.found:
            # A genuine counterfactual and an upper bound on the optimum.
            label = engine.classify(x, 1)
            assert engine.classify(answer.y, 1) != label
            exact = closest_counterfactual(
                data, 1, "hamming", x, method="hamming-milp", query_engine=engine
            )
            assert answer.distance >= exact.distance

    def test_dispatcher_portfolio_returns_plain_result(self):
        data, x = _random_instance(8)
        answer = closest_counterfactual(
            data, 1, "hamming", x, method="portfolio", budget=30.0
        )
        assert isinstance(answer, CounterfactualResult)
        reference = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")
        assert answer.distance == reference.distance

    def test_dispatcher_portfolio_accepts_time_limit_as_budget(self):
        # Single-method callers say time_limit=; the portfolio branch
        # must map it onto the per-method budget, not crash.
        data, x = _random_instance(8)
        answer = closest_counterfactual(
            data, 1, "hamming", x, method="portfolio", time_limit=30.0
        )
        reference = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")
        assert answer.distance == reference.distance

    def test_l2_portfolio_single_member(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [[3.0, 3.0], [4.0, 4.0]])
        x = np.array([0.25, 0.25])
        race = portfolio_closest_counterfactual(data, 1, "l2", x, budget=30.0)
        assert race.exact and race.method == "l2-qp"

    def test_unsupported_metric_rejected(self):
        data = Dataset([[0.0, 0.0]], [[3.0, 3.0]])
        with pytest.raises(UnsupportedSettingError):
            portfolio_closest_counterfactual(
                data, 1, "linf", np.array([0.0, 0.0]), budget=1.0
            )
