"""Tests for sharded multi-process serving: cluster, load harness, v2 API.

The contract under test is the ISSUE's acceptance bar, scaled to CI:

- the :class:`~repro.serve.ClusterService` answers **bit-identically**
  to the single-process :class:`~repro.serve.ExplanationService` over
  every method/solver combination, including the Proposition 1 tie;
- mutations route through lineage owners and bump versions in lockstep
  on every replica (the PR-5 ``<fp>@vN`` invalidation scheme);
- a full admission queue surfaces as a structured
  :class:`~repro.exceptions.OverloadedError` (HTTP 429), never a hang,
  and the worker recovers afterwards;
- the ``/v2`` resource scheme, the unified error envelope, and the
  ``/v1`` compat shape all behave as documented in ``docs/api.md``.

Speed ratios are deliberately NOT asserted here — this box may have a
single core.  The >= 3x gates live in ``benchmarks/bench_serve_scaleout.py``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import (
    ClusterService,
    Dataset,
    ExplanationService,
    OverloadedError,
    UnknownDatasetError,
    serve_http,
)
from repro.serve import LoadSpec, run_load, split_fingerprint

from .helpers import random_discrete_dataset

#: every (method, params) cell of the serving matrix; mirrors the
#: single-process cache-parity matrix in test_serve.py.
ALL_COMBOS = [
    ("classify", {"k": 3}),
    ("margin", {"k": 3}),
    ("radii", {"k": 3}),
    ("minimal_sr", {"k": 1}),
    ("minimum_sr", {"k": 1, "solver": "milp"}),
    ("minimum_sr", {"k": 1, "solver": "sat"}),
    ("counterfactual", {"k": 1, "solver": "hamming-sat"}),
    ("counterfactual", {"k": 1, "solver": "hamming-brute"}),
]


# Worker processes are expensive to fork, so one cluster (and one
# reference single-process service) is shared by the whole module; each
# test works on its own lineage or on the shared read-only one.
@pytest.fixture(scope="module")
def mod_rng():
    """Module-scoped twin of the suite ``rng`` fixture (same seed)."""
    return np.random.default_rng(20250123)


@pytest.fixture(scope="module")
def data(mod_rng):
    """The shared read-only dataset lineage."""
    return random_discrete_dataset(mod_rng, 8, 12, 12)


@pytest.fixture(scope="module")
def cluster(data):
    """A 2x2 cluster with *data* registered; fingerprint on ``.fp``."""
    with ClusterService(workers=2, replicas=2, queue_depth=32, cache_size=64) as svc:
        svc.fp = svc.add_dataset(data)
        yield svc


@pytest.fixture(scope="module")
def single(data):
    """The single-process reference; fingerprint on ``.fp``."""
    svc = ExplanationService(cache_size=64)
    svc.fp = svc.add_dataset(data)
    return svc


def _queries(rng, n, count):
    """Deterministic random boolean query vectors."""
    return [rng.integers(0, 2, size=n).astype(float) for _ in range(count)]


# -- exact parity -------------------------------------------------------


@pytest.mark.parametrize("method,params", ALL_COMBOS)
def test_cluster_answers_match_single_process(rng, cluster, single, method, params):
    queries = _queries(rng, 8, 4)
    expected = single.explain(single.fp, method, queries, params)
    actual = cluster.explain(cluster.fp, method, queries, params)
    assert [a["result"] for a in actual] == [e["result"] for e in expected]


def test_cluster_proposition1_tie_matches_single_process():
    # r+ == r- must classify positive (Proposition 1) on every replica.
    tie = Dataset([[0, 1]], [[1, 0]], discrete=True)
    x = np.array([0.0, 0.0])
    single = ExplanationService(cache_size=0)
    fp = single.add_dataset(tie)
    with ClusterService(workers=2, replicas=2, cache_size=0) as clustered:
        clustered.add_dataset(tie)
        results = {}
        for method in ("classify", "margin", "radii"):
            one = single.explain(fp, method, [x], {"k": 1})[0]["result"]
            many = clustered.explain(fp, method, [x], {"k": 1})[0]["result"]
            assert many == one
            results[method] = many
    assert results["radii"]["r_pos"] == results["radii"]["r_neg"] == 1.0
    assert results["classify"]["label"] == 1  # the tie classifies positive
    assert results["margin"]["margin"] == 0.0


def test_cluster_fingerprints_and_describe_match_single(cluster, single):
    assert cluster.fingerprints() == single.fingerprints()
    mine = cluster.describe(cluster.fp)
    theirs = single.describe(single.fp)
    assert mine == theirs
    assert mine["version"] == 0


def test_unknown_fingerprint_is_a_structured_404_error(cluster):
    ghost = "0" * 64
    with pytest.raises(UnknownDatasetError):
        cluster.explain(ghost, "classify", [np.zeros(8)], {"k": 1})
    with pytest.raises(UnknownDatasetError):
        cluster.describe(ghost)


# -- sharding and mutation routing --------------------------------------


def test_lineages_shard_by_fingerprint_and_replicate(mod_rng):
    with ClusterService(workers=3, replicas=2, cache_size=0) as svc:
        owners = set()
        for _ in range(6):
            fp = svc.add_dataset(random_discrete_dataset(mod_rng, 6, 5, 5))
            owner = svc.owner_of(fp)
            owners.add(owner)
            replicas = svc.replica_set(fp)
            assert replicas[0] == owner and len(set(replicas)) == 2
        assert len(owners) > 1  # content hashing actually spreads lineages


def test_mutation_bumps_version_on_every_replica(mod_rng):
    base_data = random_discrete_dataset(mod_rng, 6, 6, 6)
    point = mod_rng.integers(0, 2, size=6).astype(float)
    with ClusterService(workers=2, replicas=2, cache_size=16) as svc:
        fp = svc.add_dataset(base_data)
        x = mod_rng.integers(0, 2, size=6).astype(float)
        before = svc.explain(fp, "classify", [x], {"k": 1})[0]["result"]
        bumped = svc.add_points(fp, [point.tolist()], [1])
        base, version = split_fingerprint(bumped["fingerprint"])
        assert (base, version) == (fp, 1)
        assert svc.describe(fp)["version"] == 1
        # Every replica answers for the *new* version: compare against a
        # fresh single-process service holding the mutated dataset.
        reference = ExplanationService(cache_size=0)
        ref_fp = reference.add_dataset(base_data)
        reference.add_points(ref_fp, [point.tolist()], [1])
        after = svc.explain(fp, "classify", [x], {"k": 3})
        expected = reference.explain(ref_fp, "classify", [x], {"k": 3})
        assert [a["result"] for a in after] == [e["result"] for e in expected]
        # Undo restores the original lineage content at version 2.
        svc.remove_points(fp, [point.tolist()], [1])
        assert svc.describe(fp)["version"] == 2
        restored = svc.explain(fp, "classify", [x], {"k": 1})[0]["result"]
        assert restored == before


def test_remove_dataset_forgets_the_lineage(mod_rng):
    with ClusterService(workers=2, replicas=2, cache_size=16) as svc:
        fp = svc.add_dataset(random_discrete_dataset(mod_rng, 6, 5, 5))
        assert fp in svc.fingerprints()[0]
        svc.remove_dataset(fp)
        assert svc.fingerprints() == []
        with pytest.raises(UnknownDatasetError):
            svc.describe(fp)


# -- admission control and backpressure ---------------------------------


def _occupy(svc, fp, dim):
    """Start a slow solver batch in a worker; return the carrier thread."""
    xs = [np.zeros(dim) + (i % 2) for i in range(3)]

    def solve():
        svc.explain(fp, "minimum_sr", xs, {"k": 1, "solver": "sat"})

    thread = threading.Thread(target=solve, daemon=True)
    thread.start()
    return thread


def test_full_queue_raises_overloaded_then_recovers(mod_rng):
    slow_data = random_discrete_dataset(mod_rng, 10, 20, 20)
    with ClusterService(
        workers=1, replicas=1, queue_depth=1, cache_size=0, max_batch=8
    ) as svc:
        fp = svc.add_dataset(slow_data)
        x = np.zeros(10)
        thread = _occupy(svc, fp, 10)
        deadline = time.monotonic() + 10.0
        rejected = False
        while time.monotonic() < deadline and thread.is_alive():
            # The queue bound is 1; while the solver batch is in flight,
            # any further request must be refused, not queued behind it.
            try:
                svc.explain(fp, "classify", [x], {"k": 1})
            except OverloadedError:
                rejected = True
                break
            time.sleep(0.001)
        thread.join(timeout=30.0)
        if not rejected:  # explicit raise: survives `python -O`
            raise AssertionError("full admission queue never raised OverloadedError")
        assert svc.stats()["cluster"]["rejected"] >= 1
        # The worker is intact afterwards: same request now succeeds.
        answer = svc.explain(fp, "classify", [x], {"k": 1})
        assert answer[0]["result"]["label"] in (0, 1)


def test_stats_exposes_cluster_topology(cluster):
    stats = cluster.stats()
    section = stats["cluster"]
    assert section["workers"] == 2
    assert section["replicas"] == 2
    assert section["queue_depth"] == 32
    assert section["alive"] == [True, True]
    assert section["dispatched"] >= 1
    assert stats["requests"] >= 1  # summed worker counters


def test_cluster_close_is_idempotent(mod_rng):
    svc = ClusterService(workers=2, replicas=1, cache_size=0)
    svc.add_dataset(random_discrete_dataset(mod_rng, 6, 5, 5))
    svc.close()
    svc.close()
    assert svc.fingerprints() == []


# -- load-generation harness --------------------------------------------


def test_load_harness_smoke_counts_are_sound(cluster, single):
    spec = LoadSpec(
        rate=400.0,
        requests=60,
        classify_weight=0.95,
        minimum_sr_weight=0.03,
        counterfactual_weight=0.02,
        mutation_every_s=0.0,  # shared lineage stays read-only
        concurrency=8,
        seed=11,
    )
    report = run_load(cluster, [cluster.fp], 8, spec)
    assert report.malformed == 0
    assert report.errors == 0
    assert report.ok + report.overloaded == report.requests == 60
    assert report.throughput_rps > 0
    assert report.latency_ms["all"]["p99"] >= report.latency_ms["all"]["p50"] > 0
    # Counters are monotone across the run.
    for key in ("requests", "batches"):
        assert report.stats_after[key] >= report.stats_before[key]
    # The same harness drives the single-process reference unchanged.
    single_report = run_load(single, [single.fp], 8, spec)
    assert single_report.malformed == 0 and single_report.errors == 0


def test_load_harness_mutation_noise_keeps_answers_wellformed(mod_rng):
    churn = random_discrete_dataset(mod_rng, 6, 8, 8)
    with ClusterService(workers=2, replicas=2, cache_size=32) as svc:
        fp = svc.add_dataset(churn)
        spec = LoadSpec(
            rate=300.0,
            requests=40,
            mutation_every_s=0.01,
            concurrency=8,
            seed=3,
        )
        report = run_load(svc, [fp], 6, spec)
        assert report.malformed == 0
        assert report.errors == 0
        assert report.mutations >= 1
        assert svc.describe(fp)["version"] >= 1


# -- CLI factory --------------------------------------------------------


def _serve_args(*extra):
    from repro.cli import build_parser

    return build_parser().parse_args(["serve", *extra])


def test_cli_workers_1_builds_the_exact_single_process_service():
    from repro.cli import _build_serve_service

    args = _serve_args("--cache-size", "77", "--max-wait-ms", "4")
    built = _build_serve_service(args)
    assert type(built) is ExplanationService
    assert built.cache.maxsize == 77


def test_cli_workers_n_builds_a_cluster():
    from repro.cli import _build_serve_service

    args = _serve_args(
        "--workers", "2", "--replicas", "2", "--queue-depth", "5", "--cache-size", "8"
    )
    built = _build_serve_service(args)
    try:
        assert type(built) is ClusterService
        info = built.cluster_info()
        assert info["workers"] == 2
        assert info["replicas"] == 2
        assert info["queue_depth"] == 5
    finally:
        built.close()


# -- HTTP v2 API --------------------------------------------------------


def _post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


@pytest.fixture(scope="module")
def server(cluster):
    """The module cluster behind a live HTTP server on an ephemeral port."""
    server = serve_http(cluster, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()  # closing the module cluster here is fine: last user


def test_http_v2_explain_and_v1_compat(rng, server, cluster):
    url = f"http://127.0.0.1:{server.port}"
    x = rng.integers(0, 2, size=8).astype(float).tolist()
    body = {
        "fingerprint": cluster.fp,
        "method": "classify",
        "instances": [x, x],
        "params": {"k": 3},
    }
    v2 = _post(url + "/v2/explain", body)
    assert len(v2["results"]) == 2
    assert v2["results"][0]["result"]["label"] in (0, 1)
    # /v1 serves the same handler: batch shape identical...
    v1 = _post(url + "/v1/explain", body)
    assert [r["result"] for r in v1["results"]] == [r["result"] for r in v2["results"]]
    # ...and the scalar-instance compat form still answers flat.
    flat = _post(
        url + "/v1/explain",
        {
            "fingerprint": cluster.fp,
            "method": "classify",
            "instance": x,
            "params": {"k": 3},
        },
    )
    assert flat["result"] == v2["results"][0]["result"]


def test_http_v2_scalar_instance_is_rejected(server, cluster):
    url = f"http://127.0.0.1:{server.port}"
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(
            url + "/v2/explain",
            {
                "fingerprint": cluster.fp,
                "method": "classify",
                "instance": [0.0] * 8,
                "params": {"k": 1},
            },
        )
    assert err.value.code == 400
    body = json.load(err.value)
    assert body["error"]["type"] == "ValidationError"
    assert "instances" in body["error"]["message"]


def test_http_v2_cluster_endpoint_reports_topology(server):
    url = f"http://127.0.0.1:{server.port}"
    with urllib.request.urlopen(url + "/v2/cluster") as response:
        info = json.load(response)
    assert info["mode"] == "cluster"
    assert info["workers"] == 2
    assert info["replicas"] == 2


def test_http_cluster_endpoint_single_process_shape(data):
    service = ExplanationService(cache_size=0)
    service.add_dataset(data)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(url + "/v2/cluster") as response:
            info = json.load(response)
        assert info == {"mode": "single-process", "workers": 1, "replicas": 1}
    finally:
        server.shutdown()


def test_http_unknown_fingerprint_is_404_with_envelope(server):
    url = f"http://127.0.0.1:{server.port}"
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(url + f"/v2/datasets/{'0' * 64}")
    assert err.value.code == 404
    body = json.load(err.value)
    assert body["error"]["type"] == "UnknownDatasetError"
    # Compat fields mirror the envelope for one release, flagged as such.
    assert body["error_type"] == body["error"]["type"]
    assert body["error_message"] == body["error"]["message"]
    assert err.value.headers["Deprecation"] is not None


def test_http_overload_is_a_structured_429(mod_rng):
    slow_data = random_discrete_dataset(mod_rng, 10, 20, 20)
    with ClusterService(
        workers=1, replicas=1, queue_depth=1, cache_size=0, max_batch=8
    ) as svc:
        fp = svc.add_dataset(slow_data)
        server = serve_http(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.port}"
            solver = _occupy(svc, fp, 10)
            body = {
                "fingerprint": fp,
                "method": "classify",
                "instances": [[0.0] * 10],
                "params": {"k": 1},
            }
            deadline = time.monotonic() + 10.0
            status, payload = None, None
            while time.monotonic() < deadline and solver.is_alive():
                try:
                    _post(url + "/v2/explain", body)
                except urllib.error.HTTPError as exc:
                    status, payload = exc.code, json.load(exc)
                    break
                time.sleep(0.001)
            solver.join(timeout=30.0)
            if status is None:
                raise AssertionError("overloaded cluster never answered 429")
            assert status == 429
            assert payload["error"]["type"] == "OverloadedError"
        finally:
            server.shutdown()
