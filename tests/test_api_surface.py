"""Freeze of the public serving API surface.

``repro.serve`` is the layer external callers script against, so its
``__all__`` is a contract: names may be *added* in a PR, but a name
disappearing (or silently stopping to resolve) is a breaking change
and must fail loudly here, not in a downstream deployment.
"""

from __future__ import annotations

import repro
import repro.serve as serve

#: the v2 surface as frozen by the API-redesign PR.  Grow-only: extend
#: this set when adding names; removing a name is a breaking change.
FROZEN_SERVE_SURFACE = frozenset(
    {
        "BATCH_METHODS",
        "SOLVER_METHODS",
        "METHODS",
        "PROMETHEUS_CONTENT_TYPE",
        "ClusterService",
        "DurabilityError",
        "DurableStore",
        "MetricsRegistry",
        "RestoredLineage",
        "StructuredLogger",
        "new_request_id",
        "render_states",
        "stderr_logger",
        "ExplanationRequest",
        "ExplanationResponse",
        "ExplanationService",
        "ExplanationHTTPServer",
        "LoadReport",
        "LoadSpec",
        "OverloadedError",
        "ResultCache",
        "UnknownDatasetError",
        "build_workload",
        "dataset_fingerprint",
        "error_envelope",
        "request_key",
        "run_load",
        "serve_http",
        "split_fingerprint",
        "status_for",
        "versioned_fingerprint",
    }
)


def test_serve_surface_does_not_shrink():
    missing = FROZEN_SERVE_SURFACE - set(serve.__all__)
    assert not missing, f"public serve names removed from __all__: {sorted(missing)}"


def test_serve_all_names_resolve():
    for name in serve.__all__:
        assert getattr(serve, name, None) is not None, f"broken export: {name}"


def test_top_level_reexports_serving_entry_points():
    for name in ("ClusterService", "ExplanationService", "serve_http",
                 "OverloadedError", "UnknownDatasetError"):
        assert name in repro.__all__
        assert getattr(repro, name, None) is not None


def test_error_surface_maps_to_documented_statuses():
    # The status table documented in docs/api.md, spot-checked in code.
    assert serve.status_for(serve.OverloadedError("x")) == 429
    assert serve.status_for(serve.UnknownDatasetError("x")) == 404
    assert serve.status_for(repro.ValidationError("x")) == 400
    assert serve.status_for(RuntimeError("x")) == 500
