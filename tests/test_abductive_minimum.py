"""Tests for minimum sufficient reasons (brute / MILP / SAT pipelines)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abductive import check_sufficient_reason, minimum_sufficient_reason
from repro.exceptions import UnsupportedSettingError, ValidationError
from repro.knn import Dataset, KNNClassifier

from .helpers import (
    brute_force_min_sufficient_reason_discrete,
    random_continuous_dataset,
    random_discrete_dataset,
)


class TestBrute:
    def test_example_2_minimum_is_singleton(self):
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        result = minimum_sufficient_reason(data, 1, "hamming", np.zeros(3), method="brute")
        assert result.size == 1
        assert result.X == frozenset({2})

    def test_l2_brute(self, rng):
        data = random_continuous_dataset(rng, 3, 2, 2)
        x = rng.normal(size=3)
        result = minimum_sufficient_reason(data, 1, "l2", x, method="brute")
        assert check_sufficient_reason(data, 1, "l2", x, result.X)

    def test_dimension_guard(self, rng):
        data = random_discrete_dataset(rng, 20, 3, 3)
        with pytest.raises(ValidationError):
            minimum_sufficient_reason(
                data, 1, "hamming", np.zeros(20), method="brute", max_brute_dimension=8
            )


@pytest.mark.parametrize("method", ["milp", "sat"])
class TestExactPipelines:
    def test_example_2(self, method):
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        result = minimum_sufficient_reason(data, 1, "hamming", np.zeros(3), method=method)
        assert result.size == 1

    def test_one_class_dataset(self, method):
        data = Dataset([[0.0, 1.0], [1.0, 1.0]], [], discrete=True)
        result = minimum_sufficient_reason(data, 1, "hamming", np.zeros(2), method=method)
        assert result.size == 0

    def test_unsupported_setting(self, method, rng):
        data = random_continuous_dataset(rng, 3, 2, 2)
        with pytest.raises(UnsupportedSettingError):
            minimum_sufficient_reason(data, 1, "l2", np.zeros(3), method=method)
        disc = random_discrete_dataset(rng, 3, 2, 2)
        with pytest.raises(UnsupportedSettingError):
            minimum_sufficient_reason(disc, 3, "hamming", np.zeros(3), method=method)


class TestPipelinesMatchBruteForce:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 5),
        m_pos=st.integers(1, 3),
        m_neg=st.integers(1, 3),
    )
    @settings(max_examples=25)
    def test_milp_optimal_size(self, seed, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        expected = brute_force_min_sufficient_reason_discrete(clf, x)
        result = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
        assert result.size == expected
        assert check_sufficient_reason(data, 1, "hamming", x, result.X)

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 4),
        m_pos=st.integers(1, 3),
        m_neg=st.integers(1, 3),
    )
    @settings(max_examples=15)
    def test_sat_optimal_size(self, seed, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        expected = brute_force_min_sufficient_reason_discrete(clf, x)
        result = minimum_sufficient_reason(data, 1, "hamming", x, method="sat")
        assert result.size == expected
        assert check_sufficient_reason(data, 1, "hamming", x, result.X)

    def test_auto_picks_milp_for_discrete(self, rng):
        data = random_discrete_dataset(rng, 4, 2, 2)
        x = rng.integers(0, 2, size=4).astype(float)
        result = minimum_sufficient_reason(data, 1, "hamming", x)
        assert result.method == "milp"
