"""The docstring-coverage gate, runnable without CI.

``tools/check_docstrings.py`` is the stdlib stand-in for
``interrogate --fail-under`` that the CI lint job runs over
``src/repro``; these tests pin its counting rules and keep the
ratcheting floor honest locally.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CHECKER = REPO / "tools" / "check_docstrings.py"

#: keep in sync with the --fail-under value in .github/workflows/ci.yml;
#: ratchet it up as coverage improves, never down.
CI_FLOOR = 100.0


def _load_checker():
    """Import tools/check_docstrings.py as a module (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location("check_docstrings", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_meets_the_ci_floor():
    checker = _load_checker()
    missing, total = checker.audit([REPO / "src" / "repro"])
    percent = 100.0 * (total - len(missing)) / total
    assert percent >= CI_FLOOR, (
        f"docstring coverage {percent:.1f}% fell below the CI floor "
        f"{CI_FLOOR}%; missing: {missing[:10]}"
    )


def test_counting_rules(tmp_path):
    checker = _load_checker()
    sample = tmp_path / "sample.py"
    sample.write_text(
        '"""Module docstring."""\n'
        "def documented():\n"
        '    """Yes."""\n'
        "def undocumented():\n"
        "    pass\n"
        "def _private():\n"
        "    pass\n"
        "class Thing:\n"
        '    """Yes."""\n'
        "    def __init__(self):\n"
        "        pass\n"
        "    def method(self):\n"
        "        pass\n"
        "    def __repr__(self):\n"
        "        return ''\n"
        "def outer():\n"
        '    """Yes."""\n'
        "    def closure():\n"
        "        pass\n"
        "    return closure\n"
    )
    missing, total = checker.audit([sample])
    # Counted: module, documented, undocumented, Thing, Thing.method, outer.
    # Exempt: _private, __init__, __repr__, closure.
    assert total == 6
    assert missing == [f"{sample}:undocumented", f"{sample}:Thing.method"]


def test_cli_exit_codes(tmp_path):
    good = tmp_path / "good.py"
    good.write_text('"""Docstring."""\n')
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1\n")
    passing = subprocess.run(
        [sys.executable, str(CHECKER), "--fail-under", "100", str(good)],
        capture_output=True, text=True,
    )
    assert passing.returncode == 0, passing.stdout
    failing = subprocess.run(
        [sys.executable, str(CHECKER), "--fail-under", "100", str(bad)],
        capture_output=True, text=True,
    )
    assert failing.returncode == 1
    assert "FAIL" in failing.stdout and "missing" in failing.stdout
