"""Unit tests for the compiled-kernel dispatch layer (repro.neighbors.kernels).

Two contracts matter:

* **selection** — ``REPRO_KERNELS`` / :func:`select_kernels` pick an
  implementation, unknown or unavailable requests degrade to numpy with
  a :class:`RuntimeWarning` instead of failing (kernels accelerate,
  they never gate);
* **parity** — every implementation returns byte-identical matrices on
  integer-valued data, the regime the paper's exact tie-breaking
  semantics live in.  The numba half of the parametrization skips
  cleanly where the ``[perf]`` extra is not installed (the CI matrix
  runs the suite under both ``REPRO_KERNELS`` values).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.neighbors import kernels

IMPLS = sorted(kernels.IMPLEMENTATIONS)
needs_numba = pytest.mark.skipif(
    not kernels.HAVE_NUMBA, reason="numba not installed (the [perf] extra)"
)


@pytest.fixture(autouse=True)
def _restore_kernel_selection():
    """Leave the process-global kernel choice the way each test found it."""
    before = kernels.kernels_in_use()
    yield
    kernels.select_kernels(before)


@pytest.fixture
def rng():
    return np.random.default_rng(20250601)


def _pack_words(rows: np.ndarray) -> np.ndarray:
    """Binary rows -> word-major (W, rows) packed uint64 layout."""
    n_rows, dim = rows.shape
    n_words = -(-dim // 64)
    words = np.zeros((n_words, n_rows), dtype=np.uint64)
    for j in range(dim):
        words[j // 64] |= rows[:, j].astype(np.uint64) << np.uint64(j % 64)
    return words


# -- selection ----------------------------------------------------------


def test_default_selection_matches_availability():
    resolved = kernels.select_kernels(None)
    expected = "numba" if kernels.HAVE_NUMBA else "numpy"
    assert resolved == expected == kernels.kernels_in_use()


def test_explicit_numpy_selection():
    assert kernels.select_kernels("numpy") == "numpy"
    assert kernels.kernels_in_use() == "numpy"


def test_env_override_is_reread(monkeypatch):
    monkeypatch.setenv(kernels.KERNELS_ENV, "numpy")
    assert kernels.select_kernels(None) == "numpy"


def test_unknown_request_warns_and_degrades(monkeypatch):
    monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
    with pytest.warns(RuntimeWarning, match="not one of"):
        resolved = kernels.select_kernels("avx-512")
    assert resolved in kernels.KERNEL_CHOICES


@pytest.mark.skipif(kernels.HAVE_NUMBA, reason="needs the numba-less environment")
def test_numba_request_without_numba_warns_and_degrades():
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        assert kernels.select_kernels("numba") == "numpy"
    assert kernels.kernels_in_use() == "numpy"


def test_every_implementation_ships_all_three_kernels():
    for impl in kernels.IMPLEMENTATIONS.values():
        assert set(impl) == {"gram_l2", "gram_hamming", "xor_popcount"}


# -- reference parity (any implementation vs naive arithmetic) ----------


@pytest.mark.parametrize("impl", IMPLS)
def test_gram_l2_matches_difference_kernel_on_integers(impl, rng):
    kernels.select_kernels(impl)
    block = rng.integers(-20, 21, size=(13, 7)).astype(float)
    points = rng.integers(-20, 21, size=(29, 7)).astype(float)
    reference = ((block[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    got = kernels.gram_l2_powers(block, points)
    assert got.dtype == np.float64
    np.testing.assert_array_equal(got, reference)  # exact: integer arithmetic


@pytest.mark.parametrize("impl", IMPLS)
def test_gram_hamming_matches_absdiff_kernel(impl, rng):
    kernels.select_kernels(impl)
    block = rng.integers(0, 2, size=(11, 40)).astype(float)
    points = rng.integers(0, 2, size=(17, 40)).astype(float)
    reference = np.abs(block[:, None, :] - points[None, :, :]).sum(axis=2)
    np.testing.assert_array_equal(
        kernels.gram_hamming_counts(block, points), reference
    )


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("dim", [1, 63, 64, 65, 130])
def test_xor_popcount_matches_absdiff_kernel(impl, dim, rng):
    kernels.select_kernels(impl)
    a = rng.integers(0, 2, size=(9, dim))
    b = rng.integers(0, 2, size=(21, dim))
    reference = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    got = kernels.xor_popcount_counts(_pack_words(a), _pack_words(b), np.uint16)
    assert got.dtype == np.uint16
    np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("impl", IMPLS)
def test_empty_operands(impl):
    kernels.select_kernels(impl)
    empty = np.empty((0, 5))
    some = np.ones((3, 5))
    assert kernels.gram_l2_powers(empty, some).shape == (0, 3)
    assert kernels.gram_l2_powers(some, empty).shape == (3, 0)


# -- cross-implementation parity (numpy vs numba, byte for byte) --------


@needs_numba
@pytest.mark.parametrize("kernel", ["gram_l2", "gram_hamming"])
def test_numba_gram_bit_identical_to_numpy_on_integers(kernel, rng):
    binary = kernel == "gram_hamming"
    hi = 2 if binary else 50
    block = rng.integers(0, hi, size=(23, 33)).astype(float)
    points = rng.integers(0, hi, size=(41, 33)).astype(float)
    results = {}
    for impl in ("numpy", "numba"):
        kernels.select_kernels(impl)
        fn = (
            kernels.gram_hamming_counts if binary else kernels.gram_l2_powers
        )
        results[impl] = fn(block, points)
    assert results["numpy"].tobytes() == results["numba"].tobytes()


@needs_numba
def test_numba_xor_popcount_bit_identical_to_numpy(rng):
    a = _pack_words(rng.integers(0, 2, size=(15, 130)))
    b = _pack_words(rng.integers(0, 2, size=(31, 130)))
    results = {}
    for impl in ("numpy", "numba"):
        kernels.select_kernels(impl)
        results[impl] = kernels.xor_popcount_counts(a, b, np.uint16)
    assert results["numpy"].tobytes() == results["numba"].tobytes()


# -- end-to-end: the engine's answers do not depend on the kernels ------


@pytest.mark.parametrize("impl", IMPLS)
def test_engine_answers_identical_under_every_implementation(impl, rng):
    """Classification through the full engine stack is kernel-invariant."""
    from repro.knn import Dataset, QueryEngine

    points = rng.integers(0, 2, size=(120, 24)).astype(float)
    labels = rng.integers(0, 2, size=120).astype(bool)
    data = Dataset(points[labels], points[~labels])
    queries = rng.integers(0, 2, size=(30, 24)).astype(float)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        kernels.select_kernels("numpy")
        expected = QueryEngine(data, "hamming", backend="dense").classify_batch(
            queries, 3
        )
        kernels.select_kernels(impl)
        for backend in ("dense", "bitpack", "ivf"):
            got = QueryEngine(data, "hamming", backend=backend).classify_batch(
                queries, 3
            )
            np.testing.assert_array_equal(got, expected)
