"""Tests for the NN-index substrate (brute force, KD-tree, bit-packed)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.neighbors import (
    BitPackedHammingIndex,
    BruteForceIndex,
    KDTreeIndex,
    build_index,
)


def reference_query(points, metric, x, k):
    """Straight-line oracle: full sort by (distance, index)."""
    from repro.metrics import get_metric

    d = get_metric(metric).distances_to(
        np.asarray(points, dtype=float), np.asarray(x, dtype=float)
    )
    order = np.argsort(d, kind="stable")[:k]
    return d[order], order


class TestBruteForce:
    def test_single_nearest(self):
        idx = BruteForceIndex([[0.0, 0.0], [5.0, 5.0]], "l2")
        d, i = idx.nearest([1.0, 1.0])
        assert i == 0
        assert d == pytest.approx(np.sqrt(2))

    def test_ties_break_by_index(self):
        idx = BruteForceIndex([[1.0], [-1.0], [1.0]], "l2")
        _, order = idx.query([0.0], k=3)
        np.testing.assert_array_equal(order, [0, 1, 2])

    def test_k_bounds(self):
        idx = BruteForceIndex([[0.0]], "l2")
        with pytest.raises(ValidationError):
            idx.query([0.0], k=0)
        with pytest.raises(ValidationError):
            idx.query([0.0], k=2)

    def test_dimension_check(self):
        idx = BruteForceIndex([[0.0, 1.0]], "l2")
        with pytest.raises(ValidationError):
            idx.query([0.0], k=1)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            BruteForceIndex(np.empty((0, 2)), "l2")


class TestKDTree:
    @pytest.mark.parametrize("metric", ["l1", "l2", "lp:3", "linf"])
    def test_matches_brute_force_random(self, metric, rng):
        points = rng.normal(size=(200, 3))
        tree = KDTreeIndex(points, metric)
        brute = BruteForceIndex(points, metric)
        for _ in range(25):
            x = rng.normal(size=3) * 2
            for k in (1, 5, 17):
                dt, it = tree.query(x, k)
                db, ib = brute.query(x, k)
                np.testing.assert_array_equal(it, ib)
                np.testing.assert_allclose(dt, db, rtol=1e-10)

    def test_hamming_matches_brute(self, rng):
        points = rng.integers(0, 2, size=(150, 10)).astype(float)
        tree = KDTreeIndex(points, "hamming")
        brute = BruteForceIndex(points, "hamming")
        for _ in range(20):
            x = rng.integers(0, 2, size=10).astype(float)
            dt, it = tree.query(x, 7)
            db, ib = brute.query(x, 7)
            np.testing.assert_array_equal(it, ib)
            np.testing.assert_array_equal(dt, db)

    def test_duplicate_points(self):
        points = np.zeros((40, 2))
        tree = KDTreeIndex(points, "l2")
        d, i = tree.query([0.0, 0.0], k=3)
        np.testing.assert_array_equal(i, [0, 1, 2])
        np.testing.assert_array_equal(d, [0, 0, 0])

    def test_query_point_far_outside(self, rng):
        points = rng.uniform(size=(100, 2))
        tree = KDTreeIndex(points, "l2")
        d, i = tree.query([100.0, 100.0], k=1)
        db, ib = BruteForceIndex(points, "l2").query([100.0, 100.0], k=1)
        assert i[0] == ib[0]

    @given(
        seed=st.integers(0, 100_000),
        m=st.integers(1, 60),
        n=st.integers(1, 4),
        metric=st.sampled_from(["l1", "l2", "linf"]),
    )
    @settings(max_examples=40)
    def test_property_agreement(self, seed, m, n, metric):
        rng = np.random.default_rng(seed)
        # Integer grid points force many exact ties.
        points = rng.integers(-3, 4, size=(m, n)).astype(float)
        x = rng.integers(-3, 4, size=n).astype(float)
        k = int(rng.integers(1, m + 1))
        tree = KDTreeIndex(points, metric)
        dr, ir = reference_query(points, metric, x, k)
        dt, it = tree.query(x, k)
        np.testing.assert_array_equal(it, ir)
        np.testing.assert_allclose(dt, dr, rtol=1e-10)


class TestBitPacked:
    @given(seed=st.integers(0, 100_000), m=st.integers(1, 80), n=st.integers(1, 70))
    @settings(max_examples=40)
    def test_property_agreement_with_brute(self, seed, m, n):
        rng = np.random.default_rng(seed)
        points = rng.integers(0, 2, size=(m, n)).astype(float)
        x = rng.integers(0, 2, size=n).astype(float)
        k = int(rng.integers(1, m + 1))
        packed = BitPackedHammingIndex(points, "hamming")
        brute = BruteForceIndex(points, "hamming")
        dp, ip = packed.query(x, k)
        db, ib = brute.query(x, k)
        np.testing.assert_array_equal(ip, ib)
        np.testing.assert_array_equal(dp, db)

    def test_word_boundary_dimensions(self):
        # 64 and 65 columns straddle a uint64 word; pad bits must not
        # contribute to any distance.
        for n in (1, 8, 63, 64, 65, 128):
            rng = np.random.default_rng(n)
            points = rng.integers(0, 2, size=(40, n)).astype(float)
            queries = rng.integers(0, 2, size=(10, n)).astype(float)
            packed = BitPackedHammingIndex(points, "hamming")
            expected = np.stack(
                [np.abs(points - q).sum(axis=1) for q in queries]
            )
            np.testing.assert_array_equal(packed.powers_matrix(queries), expected)

    def test_ties_break_by_index(self):
        points = np.array([[0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        packed = BitPackedHammingIndex(points, "hamming")
        _, order = packed.query([0.0, 0.0], k=3)
        np.testing.assert_array_equal(order, [0, 1, 2])

    def test_rejects_non_hamming_metric(self, rng):
        points = rng.integers(0, 2, size=(5, 4)).astype(float)
        with pytest.raises(ValidationError):
            BitPackedHammingIndex(points, "l2")

    def test_rejects_non_binary_points(self):
        with pytest.raises(ValidationError):
            BitPackedHammingIndex([[0.0, 2.0]], "hamming")

    def test_rejects_non_binary_queries(self, rng):
        points = rng.integers(0, 2, size=(5, 4)).astype(float)
        packed = BitPackedHammingIndex(points, "hamming")
        with pytest.raises(ValidationError):
            packed.query([0.5, 0.0, 1.0, 0.0], k=1)
        with pytest.raises(ValidationError):
            packed.counts_matrix([[0.0, 2.0, 1.0, 0.0]])


class TestBuildIndex:
    def test_prefer_overrides(self, rng):
        pts = rng.normal(size=(10, 2))
        assert isinstance(build_index(pts, prefer="brute"), BruteForceIndex)
        assert isinstance(build_index(pts, prefer="dense"), BruteForceIndex)
        assert isinstance(build_index(pts, prefer="kdtree"), KDTreeIndex)
        with pytest.raises(ValidationError):
            build_index(pts, prefer="faiss")

    def test_prefer_bitpack(self, rng):
        pts = rng.integers(0, 2, size=(10, 6)).astype(float)
        assert isinstance(
            build_index(pts, "hamming", prefer="bitpack"), BitPackedHammingIndex
        )

    def test_auto_low_dim_uses_tree(self, rng):
        pts = rng.normal(size=(200, 2))
        assert isinstance(build_index(pts), KDTreeIndex)

    def test_auto_high_dim_uses_brute(self, rng):
        pts = rng.normal(size=(200, 50))
        assert isinstance(build_index(pts), BruteForceIndex)

    def test_auto_binary_hamming_uses_bitpack(self, rng):
        pts = rng.integers(0, 2, size=(100, 30)).astype(float)
        assert isinstance(build_index(pts, "hamming"), BitPackedHammingIndex)

    def test_auto_nonbinary_hamming_falls_back(self, rng):
        pts = rng.integers(0, 3, size=(100, 30)).astype(float)
        index = build_index(pts, "hamming")
        assert not isinstance(index, BitPackedHammingIndex)


class TestKthPowerBatch:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_matches_sorted_powers(self, metric, rng):
        from repro.metrics import get_metric

        points = rng.integers(-3, 4, size=(120, 3)).astype(float)
        tree = KDTreeIndex(points, metric)
        queries = rng.integers(-3, 4, size=(15, 3)).astype(float)
        m = get_metric(metric)
        for k in (1, 4, 120):
            got = tree.kth_power_batch(queries, k)
            expected = np.array(
                [np.sort(m.powers_to(points, x))[k - 1] for x in queries]
            )
            np.testing.assert_array_equal(got, expected)

    def test_k_beyond_size_is_inf(self, rng):
        points = rng.normal(size=(10, 2))
        tree = KDTreeIndex(points, "l2")
        assert np.isinf(tree.kth_power(points[0], 11))
