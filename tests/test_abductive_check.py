"""Tests for k-Check Sufficient Reason across all settings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abductive import check_sufficient_reason
from repro.exceptions import UnsupportedSettingError, ValidationError
from repro.knn import Dataset, KNNClassifier

from .helpers import (
    brute_force_sufficient_reason_discrete,
    random_continuous_dataset,
    random_discrete_dataset,
)


class TestBasics:
    def test_full_set_always_sufficient(self, rng):
        data = random_discrete_dataset(rng, 4, 3, 3)
        x = rng.integers(0, 2, size=4).astype(float)
        assert check_sufficient_reason(data, 1, "hamming", x, range(4))

    def test_empty_set_sufficient_iff_constant(self):
        # All points positive: f is constant 1, empty set suffices.
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [])
        assert check_sufficient_reason(data, 1, "l2", [0.5, 0.5], [])

    def test_counterexample_is_valid(self, rng):
        data = random_discrete_dataset(rng, 4, 3, 3)
        x = rng.integers(0, 2, size=4).astype(float)
        clf = KNNClassifier(data, k=1, metric="hamming")
        result = check_sufficient_reason(data, 1, "hamming", x, [])
        if not result:
            y = result.counterexample
            assert y is not None
            assert clf.classify(y) != clf.classify(x)

    def test_dimension_mismatch(self, rng):
        data = random_discrete_dataset(rng, 4, 2, 2)
        with pytest.raises(ValidationError):
            check_sufficient_reason(data, 1, "hamming", [0.0], [0])

    def test_bad_index(self, rng):
        data = random_discrete_dataset(rng, 3, 2, 2)
        with pytest.raises(ValidationError):
            check_sufficient_reason(data, 1, "hamming", [0.0, 0.0, 0.0], [5])

    def test_unsupported_setting(self, rng):
        data = random_continuous_dataset(rng, 3, 3, 3)
        x = rng.normal(size=3)
        with pytest.raises(UnsupportedSettingError):
            check_sufficient_reason(data, 3, "l1", x, [0])

    def test_method_validation(self, rng):
        data = random_discrete_dataset(rng, 3, 2, 2)
        x = np.zeros(3)
        with pytest.raises(ValidationError):
            check_sufficient_reason(data, 1, "hamming", x, [], method="l2")
        with pytest.raises(ValidationError):
            check_sufficient_reason(data, 3, "hamming", x, [], method="hamming-k1")
        with pytest.raises(ValidationError):
            check_sufficient_reason(data, 1, "hamming", x, [], method="magic")

    def test_paper_example_2(self):
        """Example 2: S+ = {011, 101, 111}, x = 000; {0,1} and {2} are SRs."""
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        x = np.zeros(3)
        assert check_sufficient_reason(data, 1, "hamming", x, {0, 1})
        assert check_sufficient_reason(data, 1, "hamming", x, {2})
        assert not check_sufficient_reason(data, 1, "hamming", x, {0})
        assert not check_sufficient_reason(data, 1, "hamming", x, {1})
        assert not check_sufficient_reason(data, 1, "hamming", x, set())


class TestHammingK1AgainstBruteForce:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 5),
        m_pos=st.integers(1, 4),
        m_neg=st.integers(1, 4),
    )
    @settings(max_examples=60)
    def test_agreement(self, seed, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        X = set(
            int(i) for i in rng.choice(n, size=rng.integers(0, n + 1), replace=False)
        )
        expected = brute_force_sufficient_reason_discrete(clf, x, X)
        got = check_sufficient_reason(data, 1, "hamming", x, X, method="hamming-k1")
        assert bool(got) == expected
        # The brute-force method must agree too.
        brute = check_sufficient_reason(data, 1, "hamming", x, X, method="brute")
        assert bool(brute) == expected


class TestDiscreteK3BruteMethod:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(2, 4),
        m_pos=st.integers(2, 4),
        m_neg=st.integers(2, 4),
    )
    @settings(max_examples=30)
    def test_brute_matches_oracle(self, seed, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        if len(data) < 3:
            return
        clf = KNNClassifier(data, k=3, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        X = set(int(i) for i in rng.choice(n, size=rng.integers(0, n), replace=False))
        expected = brute_force_sufficient_reason_discrete(clf, x, X)
        got = check_sufficient_reason(data, 3, "hamming", x, X)  # auto -> brute
        assert bool(got) == expected


class TestL2Checker:
    def _brute_check_l2(self, data, k, x, X, rng, attempts=3000):
        """Randomized refutation search: returns False if a counterexample
        is found (sound only for the negative direction)."""
        clf = KNNClassifier(data, k=k, metric="l2")
        label = clf.classify(x)
        free = [i for i in range(data.dimension) if i not in X]
        if not free:
            return True
        y = np.array(x, dtype=float)
        for _ in range(attempts):
            y[free] = rng.normal(size=len(free)) * 3
            if clf.classify(y) != label:
                return False
        return True

    @given(
        seed=st.integers(0, 100_000),
        k=st.sampled_from([1, 3]),
        n=st.integers(1, 3),
        m_pos=st.integers(1, 3),
        m_neg=st.integers(1, 3),
    )
    @settings(max_examples=30)
    def test_l2_check_consistency(self, seed, k, n, m_pos, m_neg):
        rng = np.random.default_rng(seed)
        data = random_continuous_dataset(rng, n, m_pos, m_neg)
        if len(data) < k:
            return
        clf = KNNClassifier(data, k=k, metric="l2")
        x = rng.normal(size=n)
        X = set(int(i) for i in rng.choice(n, size=rng.integers(0, n + 1), replace=False))
        result = check_sufficient_reason(data, k, "l2", x, X)
        if result.is_sufficient:
            # Randomized search must fail to refute a certified yes.
            assert self._brute_check_l2(data, k, x, X, rng, attempts=500)
        else:
            # The counterexample must agree with x on X and either flip
            # the label outright or sit on an exact classification tie
            # (a boundary counterexample of a closed region, where the
            # optimistic semantics flips it but floats may disagree).
            y = result.counterexample
            np.testing.assert_allclose(y[sorted(X)], x[sorted(X)], atol=1e-7)
            flipped = clf.classify(y) != clf.classify(x)
            assert flipped or abs(clf.margin(y)) < 1e-7


class TestL1K1Checker:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 4),
        m_pos=st.integers(1, 4),
        m_neg=st.integers(1, 4),
    )
    @settings(max_examples=40)
    def test_l1_matches_discrete_brute_on_boolean_data(self, seed, n, m_pos, m_neg):
        # On {0,1} data, l1 distance == Hamming distance, and counterexamples
        # over R^n exist iff they exist over {0,1}^n for k=1 (the projection
        # candidates are themselves boolean).  This gives an exact oracle.
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=1, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        X = set(int(i) for i in rng.choice(n, size=rng.integers(0, n + 1), replace=False))
        expected = brute_force_sufficient_reason_discrete(clf, x, X)
        got = check_sufficient_reason(data, 1, "l1", x, X, method="l1-k1")
        assert bool(got) == expected

    def test_l1_continuous_counterexample_valid(self, rng):
        data = random_continuous_dataset(rng, 3, 4, 4)
        clf = KNNClassifier(data, k=1, metric="l1")
        x = rng.normal(size=3)
        result = check_sufficient_reason(data, 1, "l1", x, [0])
        if not result:
            y = result.counterexample
            assert clf.classify(y) != clf.classify(x)
            assert y[0] == pytest.approx(x[0])
