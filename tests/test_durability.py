"""Durability layer: WAL append/replay, snapshots, and restore edge cases.

The correctness anchor throughout is the snapshot == functional-fold
fingerprint invariant from the streaming PR (``tests/test_fuzz_parity.py``):
a lineage restored from disk must carry *bit-for-bit* the same versioned
fingerprint — and answer queries identically — as a dataset built by
folding the same mutation batches through ``Dataset.with_added`` /
``Dataset.with_removed`` in memory.  The edge-case tests pin the recovery
contract: damaged tails degrade to the last good record with a structured
warning, and restore never crashes the boot.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.knn import Dataset
from repro.serve import (
    DurableStore,
    ExplanationService,
    dataset_fingerprint,
    versioned_fingerprint,
)
from repro.serve.durability import WAL_NAME, _record_checksum


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


@pytest.fixture
def data(rng):
    return Dataset(rng.normal(size=(12, 4)), rng.normal(size=(10, 4)))


def _batches(rng, n, dim=4, size=2):
    """Deterministic add batches: ``[(points, labels), ...]``."""
    out = []
    for _ in range(n):
        points = rng.normal(size=(size, dim))
        labels = rng.choice([1, -1], size=size)
        if not (labels == 1).any():
            labels[0] = 1
        out.append((points, labels))
    return out


def _fold(data, batches):
    """The in-memory functional reference: fold every batch in order."""
    for points, labels in batches:
        data = data.with_added(points, labels, None)
    return data


def _wal_lines(store, base):
    return (store.root / base / WAL_NAME).read_bytes().splitlines()


# -- store units -----------------------------------------------------------


def test_register_then_restore_without_snapshot(data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    restored = store.restore(base)
    assert restored.dataset is not None
    assert not restored.truncated
    assert restored.version == 0
    assert dataset_fingerprint(restored.dataset) == base


def test_register_is_idempotent(data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    store.register(base, data)
    assert len(_wal_lines(store, base)) == 1


def test_wal_replay_matches_functional_fold(rng, data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    batches = _batches(rng, 5)
    folded = data
    for version, (points, labels) in enumerate(batches, start=1):
        folded = folded.with_added(points, labels, None)
        store.append_mutation(base, version, "add", folded, points, labels, None)
    restored = store.restore(base)
    assert restored.replayed == len(batches)
    assert restored.fingerprint == versioned_fingerprint(base, len(batches))
    reference = _fold(data, batches)
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(reference)
    np.testing.assert_array_equal(restored.dataset.positives, reference.positives)
    np.testing.assert_array_equal(restored.dataset.negatives, reference.negatives)


def test_remove_batches_replay_too(rng, data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    points, labels = data.positives[:2], [1, 1]
    folded = data.with_removed(points, labels, None)
    store.append_mutation(base, 1, "remove", folded, points, labels, None)
    restored = store.restore(base)
    assert restored.version == 1
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(folded)


def test_snapshot_compacts_wal_and_prunes_old_snapshots(rng, data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=2, keep_snapshots=1)
    base = dataset_fingerprint(data)
    store.register(base, data)
    folded = data
    for version, (points, labels) in enumerate(_batches(rng, 4), start=1):
        folded = folded.with_added(points, labels, None)
        store.append_mutation(base, version, "add", folded, points, labels, None)
        if store.snapshot_due(version):
            store.snapshot(base, folded, version)
    # v2 and v4 snapshots were due; keep_snapshots=1 leaves only v4, and
    # the WAL holds no records at or below the covered version.
    snaps = sorted(p.name for p in (store.root / base).glob("snapshot-v*.pkl"))
    assert snaps == ["snapshot-v4.pkl"]
    records = [json.loads(line) for line in _wal_lines(store, base)]
    assert all(record["version"] > 4 for record in records)
    restored = store.restore(base)
    assert restored.version == 4
    assert restored.replayed == 0  # nothing left to replay: snapshot is current
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(folded)


def test_snapshot_plus_tail_replay(rng, data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    batches = _batches(rng, 5)
    folded = data
    for version, (points, labels) in enumerate(batches, start=1):
        folded = folded.with_added(points, labels, None)
        store.append_mutation(base, version, "add", folded, points, labels, None)
        if version == 2:
            store.snapshot(base, folded, version)
    restored = store.restore(base)
    assert restored.version == 5
    assert restored.replayed == 3  # v3..v5 on top of the v2 snapshot
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(
        _fold(data, batches)
    )


def test_retire_removes_lineage(data, tmp_path):
    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    store.register(base, data)
    assert store.lineages() == [base]
    store.retire(base)
    assert store.lineages() == []
    assert not (store.root / base).exists()


def test_snapshot_due_cadence(tmp_path):
    store = DurableStore(tmp_path, snapshot_every=3)
    assert [v for v in range(1, 10) if store.snapshot_due(v)] == [3, 6, 9]
    assert not DurableStore(tmp_path, snapshot_every=0).snapshot_due(3)


def test_append_unknown_op_raises(data, tmp_path):
    from repro.exceptions import DurabilityError

    store = DurableStore(tmp_path, snapshot_every=0)
    base = dataset_fingerprint(data)
    with pytest.raises(DurabilityError):
        store.append_mutation(base, 1, "replace", data, data.positives[:1], [1], None)


# -- restore edge cases ----------------------------------------------------


def _durable_history(rng, data, tmp_path, n=4, **kwargs):
    """A store with a registered lineage and *n* applied add batches."""
    store = DurableStore(tmp_path, **kwargs)
    base = dataset_fingerprint(data)
    store.register(base, data)
    folded, folds = data, [data]
    for version, (points, labels) in enumerate(_batches(rng, n), start=1):
        folded = folded.with_added(points, labels, None)
        folds.append(folded)
        store.append_mutation(base, version, "add", folded, points, labels, None)
    store.close()
    return store, base, folds


def test_truncated_tail_degrades_to_last_good_record(rng, data, tmp_path):
    store, base, folds = _durable_history(rng, data, tmp_path, snapshot_every=0)
    wal = store.root / base / WAL_NAME
    # Simulate a crash mid-append: cut the last line in half.
    raw = wal.read_bytes()
    wal.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
    restored = store.restore(base)
    assert restored.truncated
    assert "truncated or non-JSON" in restored.warning
    assert restored.version == 3  # the last *whole* record
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(folds[3])


def test_corrupt_checksum_degrades_with_warning(rng, data, tmp_path):
    store, base, folds = _durable_history(rng, data, tmp_path, snapshot_every=0)
    wal = store.root / base / WAL_NAME
    lines = wal.read_bytes().splitlines()
    # Flip a digit inside record v2's committed content hash: the line
    # stays valid JSON but its checksum no longer matches.
    record = json.loads(lines[2])
    record["content"] = ("0" if record["content"][0] != "0" else "1") + record["content"][1:]
    lines[2] = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    wal.write_bytes(b"\n".join(lines) + b"\n")
    restored = store.restore(base)
    assert restored.truncated
    assert "checksum mismatch" in restored.warning
    assert restored.version == 1
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(folds[1])


def test_tampered_record_with_recomputed_checksum_fails_fold_check(rng, data, tmp_path):
    store, base, folds = _durable_history(rng, data, tmp_path, snapshot_every=0)
    wal = store.root / base / WAL_NAME
    lines = wal.read_bytes().splitlines()
    # A smarter corruption: change the batch *and* recompute the checksum.
    # The per-record checksum passes, but replay diverges from the
    # committed content hash — the functional-fold invariant catches it.
    record = json.loads(lines[2])
    record["points"][0][0] += 1.0
    record["checksum"] = _record_checksum(record)
    lines[2] = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    wal.write_bytes(b"\n".join(lines) + b"\n")
    restored = store.restore(base)
    assert restored.truncated
    assert "diverged" in restored.warning
    assert restored.version == 1


def test_empty_state_dir_boots_clean(tmp_path):
    store = DurableStore(tmp_path / "fresh")
    assert store.restore_all() == {}
    service = ExplanationService(state_dir=tmp_path / "fresh2")
    assert service.fingerprints() == []
    assert service.stats()["restored"] == {}
    service.close()


def test_snapshot_newer_than_wal_restores(rng, data, tmp_path):
    # Compaction can leave the WAL entirely *behind* the snapshot (empty
    # tail); the snapshot alone must restore, replaying nothing.
    store, base, folds = _durable_history(
        rng, data, tmp_path, snapshot_every=0, keep_snapshots=1
    )
    store.snapshot(base, folds[4], 4)
    assert _wal_lines(store, base) == []
    restored = store.restore(base)
    assert not restored.truncated
    assert restored.version == 4 and restored.replayed == 0
    assert dataset_fingerprint(restored.dataset) == dataset_fingerprint(folds[4])


def test_unrecoverable_lineage_reports_and_never_raises(data, tmp_path):
    store = DurableStore(tmp_path)
    base = dataset_fingerprint(data)
    (store.root / base).mkdir()
    (store.root / base / WAL_NAME).write_bytes(b"not json at all\n")
    restored = store.restore(base)
    assert restored.dataset is None
    assert restored.truncated and "unrecoverable" in restored.warning


def test_restore_logs_structured_warning(rng, data, tmp_path):
    from repro.serve import StructuredLogger

    log_stream = io.StringIO()
    store, base, _ = _durable_history(rng, data, tmp_path, snapshot_every=0)
    store.log = StructuredLogger(log_stream, component="durability")
    wal = store.root / base / WAL_NAME
    wal.write_bytes(wal.read_bytes()[:-10])
    store.restore(base)
    records = [json.loads(line) for line in log_stream.getvalue().splitlines()]
    assert any(
        r["event"] == "lineage_restored" and r["level"] == "warning" for r in records
    )


# -- service-level restore -------------------------------------------------


def test_service_restores_lineage_and_answers_identically(rng, data, tmp_path):
    state = tmp_path / "state"
    batches = _batches(rng, 6)
    queries = rng.normal(size=(5, 4))

    durable = ExplanationService(state_dir=state, snapshot_every=4)
    fp = durable.add_dataset(data)
    for points, labels in batches:
        result = durable.add_points(fp, points, labels)
    pre_crash = result["fingerprint"]
    durable.close()
    del durable  # no clean shutdown protocol beyond close(): WAL is the truth

    # An uninterrupted in-memory reference over the same history.
    reference = ExplanationService()
    reference.add_dataset(data)
    for points, labels in batches:
        reference.add_points(fp, points, labels)

    revived = ExplanationService(state_dir=state)
    assert revived.fingerprints() == [pre_crash] == reference.fingerprints()
    for x in queries:
        a = revived.submit(fp, "margin", x, k=3).payload
        b = reference.submit(fp, "margin", x, k=3).payload
        assert a == b
    restored = revived.stats()["restored"]
    assert list(restored.values())[0]["version"] == 6
    revived.close()


def test_service_restores_warm_engines_from_current_snapshot(rng, data, tmp_path):
    state = tmp_path / "state"
    service = ExplanationService(state_dir=state, snapshot_every=2)
    fp = service.add_dataset(data)
    service.submit(fp, "classify", rng.normal(size=4), k=3)  # warms an engine
    for points, labels in _batches(rng, 2):
        service.add_points(fp, points, labels)  # snapshot lands at v2
    service.close()

    revived = ExplanationService(state_dir=state)
    # v2 snapshot is current (empty tail) and carried the warm engine.
    assert revived.stats()["engines"] == 1
    assert revived.submit(fp, "classify", rng.normal(size=4), k=3).ok
    revived.close()


def test_service_mutation_is_on_disk_before_ack(rng, data, tmp_path):
    service = ExplanationService(state_dir=tmp_path, snapshot_every=0)
    fp = service.add_dataset(data)
    points, labels = rng.normal(size=(2, 4)), [1, -1]
    result = service.add_points(fp, points, labels)
    # The acknowledged version's record is already durable: a copy of the
    # store restores it without the service shutting down at all.
    restored = DurableStore(tmp_path, snapshot_every=0).restore(fp)
    assert restored.fingerprint == result["fingerprint"]
    service.close()


def test_service_retires_durable_state_on_remove(rng, data, tmp_path):
    service = ExplanationService(state_dir=tmp_path)
    fp = service.add_dataset(data)
    service.remove_dataset(fp)
    service.close()
    assert ExplanationService(state_dir=tmp_path).fingerprints() == []


def test_cluster_restores_owned_lineages(rng, data, tmp_path):
    from repro.serve import ClusterService

    state = tmp_path / "cluster-state"
    batches = _batches(rng, 3)
    with ClusterService(workers=2, state_dir=state, snapshot_every=2) as cluster:
        fp = cluster.add_dataset(data)
        for points, labels in batches:
            cluster.add_points(fp, points, labels)
        pre_crash = cluster.fingerprints()
        answer = cluster.explain(fp, "margin", [np.zeros(4)], {"k": 3})

    with ClusterService(workers=2, state_dir=state) as revived:
        assert revived.fingerprints() == pre_crash
        assert revived.restored  # the adoption record is surfaced
        again = revived.explain(fp, "margin", [np.zeros(4)], {"k": 3})
        assert again[0]["result"] == answer[0]["result"]
