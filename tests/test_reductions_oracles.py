"""Tests for the exact source-problem solvers in reductions.oracles."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.reductions import oracles


def random_graph(rng, n, p=0.5):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


class TestVertexCover:
    def test_triangle(self):
        g = nx.cycle_graph(3)
        assert oracles.minimum_vertex_cover_size(g) == 2
        assert oracles.has_vertex_cover(g, 2)
        assert not oracles.has_vertex_cover(g, 1)

    def test_star(self):
        g = nx.star_graph(4)  # center 0
        assert oracles.minimum_vertex_cover_size(g) == 1

    def test_empty_graph(self):
        g = nx.empty_graph(4)
        assert oracles.minimum_vertex_cover_size(g) == 0

    def test_bad_nodes_rejected(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValidationError):
            oracles.minimum_vertex_cover_size(g)

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 7))
    @settings(max_examples=25)
    def test_matches_brute_force(self, seed, n):
        from itertools import combinations

        rng = np.random.default_rng(seed)
        g = random_graph(rng, n)
        expected = n
        for size in range(n + 1):
            if any(
                all(u in C or v in C for u, v in g.edges)
                for C in (set(c) for c in combinations(range(n), size))
            ):
                expected = size
                break
        assert oracles.minimum_vertex_cover_size(g) == expected


class TestClique:
    def test_known_graphs(self):
        assert oracles.maximum_clique_size(nx.complete_graph(5)) == 5
        assert oracles.maximum_clique_size(nx.cycle_graph(5)) == 2
        assert oracles.maximum_clique_size(nx.cycle_graph(3)) == 3
        assert oracles.maximum_clique_size(nx.empty_graph(3)) == 1

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 7))
    @settings(max_examples=25)
    def test_matches_networkx_enumeration(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n)
        expected = max((len(c) for c in nx.find_cliques(g)), default=1)
        assert oracles.maximum_clique_size(g) == expected


class TestPartition:
    @pytest.mark.parametrize(
        "values, expected",
        [
            ([1, 1], True),
            ([1, 2, 3], True),
            ([2, 3], False),
            ([5], False),
            ([3, 3, 3], False),
            ([1, 5, 6], True),
        ],
    )
    def test_known_cases(self, values, expected):
        assert oracles.partition_exists(values) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            oracles.partition_exists([0, 1])

    @given(values=st.lists(st.integers(1, 12), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_matches_brute_force(self, values):
        from itertools import combinations

        total = sum(values)
        expected = total % 2 == 0 and any(
            sum(c) * 2 == total
            for size in range(len(values) + 1)
            for c in combinations(values, size)
        )
        assert oracles.partition_exists(values) == expected


class TestKnapsack:
    def test_simple(self):
        # Items (w=2, v=5), (w=3, v=4): total value 9, capacity 2 -> 5 >= 4.5.
        assert oracles.half_value_knapsack_exists([2, 3], [5, 4], 2)
        # Capacity 1: nothing fits, 0 < 4.5.
        assert not oracles.half_value_knapsack_exists([2, 3], [5, 4], 1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            oracles.half_value_knapsack_exists([1], [1, 2], 1)
        with pytest.raises(ValidationError):
            oracles.half_value_knapsack_exists([0], [1], 1)
        with pytest.raises(ValidationError):
            oracles.half_value_knapsack_exists([1], [1], 0)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 7),
    )
    @settings(max_examples=40)
    def test_matches_brute_force(self, seed, n):
        from itertools import combinations

        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 8, size=n).tolist()
        values = rng.integers(1, 8, size=n).tolist()
        capacity = int(rng.integers(1, sum(weights) + 1))
        total = sum(values)
        expected = any(
            sum(weights[i] for i in c) <= capacity
            and 2 * sum(values[i] for i in c) >= total
            for size in range(n + 1)
            for c in combinations(range(n), size)
        )
        assert oracles.half_value_knapsack_exists(weights, values, capacity) == expected


class TestBMCF:
    def test_trivial_yes(self):
        # One row [1, 0]; flipping column 0 gives weight 0 <= |T|-1 = 0.
        matrix = np.array([[1, 0]])
        assert oracles.bmcf_exists(matrix, budget=1, p=0)

    def test_budget_zero(self):
        matrix = np.array([[0, 1]])
        # |T| = 0 requires weight <= -1: impossible.
        assert not oracles.bmcf_exists(matrix, budget=0, p=0)

    def test_p_relaxation(self):
        matrix = np.array([[1, 0, 0], [1, 1, 1]])
        # Flipping column 0 leaves row 0 at weight 0 <= |T| - 1 but row 1
        # at weight 2: good enough with p = 1, not with p = 0.
        assert oracles.bmcf_exists(matrix, budget=1, p=1)
        assert not oracles.bmcf_exists(matrix, budget=1, p=0)


class TestInterdictionOracles:
    def test_triangle_interdiction(self):
        g = nx.cycle_graph(3)
        # alpha(triangle) = 1; any independent set of size >= 1 is a node;
        # to hit all of them S must contain all 3 nodes.
        assert not oracles.independent_set_interdiction_exists(g, 2, 1)
        assert oracles.independent_set_interdiction_exists(g, 3, 1)
        # Size >= 2 independent sets do not exist at all: S = empty works.
        assert oracles.independent_set_interdiction_exists(g, 1, 2)

    def test_exists_forall_vc(self):
        g = nx.path_graph(3)  # edges (0,1), (1,2); tau = 1 ({1})
        # q = 1: can we force covers > 1?  Pick S = {0}: any cover containing
        # 0 of size <= 1 is {0}, which misses (1,2). Yes.
        assert oracles.exists_forall_vertex_cover(g, 1, 1)
        # q = 2: supersets of any single node of size <= 2 can always cover
        # (add node 1 or the missing endpoint). With p = 1, No.
        assert not oracles.exists_forall_vertex_cover(g, 1, 2)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 5))
    @settings(max_examples=15)
    def test_theorem9_equivalence(self, seed, n):
        """ISI(G, p, q) == ∃∀-VC(G, p, n - q) — Theorem 9's map."""
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n)
        p = int(rng.integers(1, n + 1))
        q = int(rng.integers(1, n + 1))
        isi = oracles.independent_set_interdiction_exists(g, p, q)
        efvc = oracles.exists_forall_vertex_cover(g, p, n - q)
        assert isi == efvc
