"""Smoke tests: every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = {
    "quickstart.py": [],
    "digits_counterfactual.py": ["--side", "8", "--per-digit", "8"],
    "voronoi_counterfactual.py": ["--points-per-class", "4"],
    "bisector_geometry.py": [],
    "hardness_gallery.py": [],
    "multiclass_digits.py": [],
    "serve_demo.py": [],
}

EXPECTED_MARKERS = {
    "quickstart.py": ["minimal sufficient reason", "counterfactual decision"],
    "digits_counterfactual.py": ["closest counterfactual flips", "difference map"],
    "voronoi_counterfactual.py": ["flip: 0 (expect 0)"],
    "bisector_geometry.py": ["0 mismatches"],
    "hardness_gallery.py": ["Theorem 1", "Theorem 3", "Theorem 4"],
    "multiclass_digits.py": ["classified as digit", "targeted counterfactual"],
    "serve_demo.py": ["served from cache", "portfolio wins"],
}


@pytest.mark.parametrize("script", sorted(SCRIPTS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *SCRIPTS[script]],
        capture_output=True,
        text=True,
        timeout=280,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in result.stdout, f"{script}: missing {marker!r}"
