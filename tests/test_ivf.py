"""Unit tests for the certified inverted-file index (repro.neighbors.ivf).

The differential harnesses (tests/test_backends.py, tests/test_fuzz_parity.py)
already pit the IVF engine backend against dense/kdtree end to end; the
tests here pin the *mechanisms* those harnesses only observe indirectly:
certificate outcomes and their counters, the exhaustion and give-up
regimes of the nearest-first scan, tie strictness, parameter validation,
slot stability under tombstoning, and the staleness-triggered lazy
requantize of the mutation protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.neighbors import BruteForceIndex, IVFIndex
from repro.neighbors.ivf import _GIVEUP_SCAN_FRACTION


@pytest.fixture
def rng():
    return np.random.default_rng(20250601)


def _clustered(rng, n=1_200, dim=12, n_clusters=8, spread=1):
    """Well-separated integer clusters: the certify-always regime."""
    centers = rng.integers(0, 200, size=(n_clusters, dim)).astype(float) * 10
    assign = rng.integers(0, n_clusters, size=n)
    points = centers[assign] + rng.integers(-spread, spread + 1, size=(n, dim))
    return centers, points


def _assert_query_parity(ivf, brute, queries, k):
    for x in queries:
        bd, bi = brute.query(x, k)
        vd, vi = ivf.query(x, k)
        np.testing.assert_array_equal(bi, vi)
        np.testing.assert_array_equal(bd, vd)


# -- certificates -------------------------------------------------------


def test_clustered_queries_certify_and_match_brute(rng):
    centers, points = _clustered(rng)
    queries = centers[rng.integers(0, len(centers), size=25)] + rng.integers(
        -1, 2, size=(25, centers.shape[1])
    )
    ivf = IVFIndex(points, "l2")
    brute = BruteForceIndex(points, "l2")
    _assert_query_parity(ivf, brute, queries, 5)
    assert ivf.stats["certified"] == 25
    assert ivf.stats["fallback"] == 0


def test_unclusterable_queries_fall_back_and_stay_exact(rng):
    # Uniform integers over a wide box: bucket radii overlap everything,
    # every lower bound collapses to ~0, no certificate can fire.
    points = rng.integers(0, 100, size=(600, 24)).astype(float)
    queries = rng.integers(0, 100, size=(15, 24)).astype(float)
    ivf = IVFIndex(points, "l2")
    brute = BruteForceIndex(points, "l2")
    _assert_query_parity(ivf, brute, queries, 4)
    assert ivf.stats["fallback"] == 15
    assert ivf.stats["certified"] == 0


def test_kth_power_batch_value_certificate_matches_brute(rng):
    centers, points = _clustered(rng)
    queries = centers[rng.integers(0, len(centers), size=30)].astype(float)
    ivf = IVFIndex(points, "l2")
    brute = BruteForceIndex(points, "l2")
    got = ivf.kth_power_batch(queries, 3)
    want = np.array(
        [np.partition(brute.metric.powers_to(points, x), 2)[2] for x in queries]
    )
    np.testing.assert_array_equal(got, want)
    assert ivf.stats["certified"] == 30


def test_kth_power_beyond_size_is_inf(rng):
    _, points = _clustered(rng, n=50)
    ivf = IVFIndex(points, "l2")
    assert np.isinf(ivf.kth_power(points[0], 51))
    got = ivf.kth_power_batch(points[:4], 999)
    assert got.shape == (4,) and np.isinf(got).all()


def test_tie_heavy_hamming_data_preserves_index_order(rng):
    # Dense exact ties everywhere: the strict (index-returning)
    # certificate must reproduce the smallest-slot tie winners, whether
    # it certifies or falls back.
    points = rng.integers(0, 2, size=(300, 10)).astype(float)
    queries = rng.integers(0, 2, size=(40, 10)).astype(float)
    ivf = IVFIndex(points, "hamming")
    brute = BruteForceIndex(points, "hamming")
    _assert_query_parity(ivf, brute, queries, 7)


def test_exhaustive_scan_is_exact_without_fallback(rng):
    # k = n forces the scan through every bucket: exact by exhaustion,
    # counted as certified (nothing was skipped, nothing re-scanned).
    _, points = _clustered(rng, n=40)
    ivf = IVFIndex(points, "l2")
    brute = BruteForceIndex(points, "l2")
    _assert_query_parity(ivf, brute, points[:5], 40)
    assert ivf.stats["fallback"] == 0


def test_giveup_fraction_bounds_the_scan(rng):
    # On fallback queries the incremental scan must have visited at most
    # the give-up budget before the vectorized full scan took over —
    # pinned here through the stats counters and the module constant.
    assert 0 < _GIVEUP_SCAN_FRACTION < 1
    points = rng.integers(0, 100, size=(400, 16)).astype(float)
    ivf = IVFIndex(points, "l2")
    ivf.query(points[0], 3)
    assert ivf.stats["fallback"] == 1


# -- construction and validation ----------------------------------------


def test_nlist_defaults_to_sqrt_n(rng):
    _, points = _clustered(rng, n=900)
    assert IVFIndex(points, "l2").nlist <= 30  # ceil(sqrt(900)), empties dropped
    assert IVFIndex(points, "l2", nlist=5).nlist <= 5


def test_nlist_validation(rng):
    _, points = _clustered(rng, n=30)
    with pytest.raises(ValidationError, match="nlist"):
        IVFIndex(points, "l2", nlist=0)


def test_requires_triangle_inequality_metric(rng):
    from repro.metrics import Metric

    class DotMetric(Metric):  # no triangle inequality, no certificate
        name = "dot"

        def distances_to(self, points, x):
            return -(points @ x)

    _, points = _clustered(rng, n=30)
    with pytest.raises(ValidationError, match="lp or Hamming"):
        IVFIndex(points, DotMetric())


def test_build_is_deterministic(rng):
    _, points = _clustered(rng, n=500)
    a, b = IVFIndex(points, "l2"), IVFIndex(points, "l2")
    np.testing.assert_array_equal(a._centroids, b._centroids)
    q = points[7]
    np.testing.assert_array_equal(a.query(q, 5)[1], b.query(q, 5)[1])


def test_all_metrics_supported(rng):
    _, points = _clustered(rng, n=200)
    for metric in ("l1", "l2", "linf"):
        ivf = IVFIndex(points, metric)
        brute = BruteForceIndex(points, metric)
        _assert_query_parity(ivf, brute, points[:5], 3)


# -- mutation protocol --------------------------------------------------


def test_add_appends_without_requantize(rng):
    _, points = _clustered(rng, n=400)
    ivf = IVFIndex(points, "l2")
    row = points[0] + 1.0
    ivf.add(row, count=2)
    assert ivf.size == 402 and ivf.storage_size == 402
    assert ivf.stats["requantized"] == 0
    brute = BruteForceIndex(np.vstack([points, row, row]), "l2")
    _assert_query_parity(ivf, brute, [row, points[5]], 4)


def test_remove_tombstones_latest_copies_first(rng):
    _, points = _clustered(rng, n=300)
    ivf = IVFIndex(points, "l2")
    ivf.add(points[0], count=3)  # slots 300..302
    ivf.remove(points[0], count=2)  # kills 302, 301
    assert ivf.size == 301 and ivf.storage_size == 303
    d, idx = ivf.query(points[0], 2)
    assert 0 in idx and 300 in idx  # the original and the surviving copy
    np.testing.assert_array_equal(d, [0.0, 0.0])


def test_remove_more_copies_than_live_raises(rng):
    _, points = _clustered(rng, n=100)
    ivf = IVFIndex(points, "l2")
    with pytest.raises(ValidationError, match="cannot remove"):
        ivf.remove(points[0], count=5_000)


def test_add_validates_dimension_and_count(rng):
    _, points = _clustered(rng, n=100, dim=12)
    ivf = IVFIndex(points, "l2")
    with pytest.raises(ValidationError, match="dimension"):
        ivf.add(np.zeros(5))
    with pytest.raises(ValidationError, match="count"):
        ivf.add(points[0], count=0)


def test_staleness_triggers_lazy_requantize(rng):
    _, points = _clustered(rng, n=100)
    ivf = IVFIndex(points, "l2")
    for i in range(30):  # 30% staleness > STALE_FRACTION
        ivf.add(points[i % len(points)] + 0.5)
    assert ivf.staleness > IVFIndex.STALE_FRACTION
    assert ivf.stats["requantized"] == 0  # mutations alone never rebuild
    ivf.query(points[0], 3)  # the next query pays for the rebuild
    assert ivf.stats["requantized"] == 1
    assert ivf.staleness == 0.0


def test_mutated_index_matches_fresh_rebuild(rng):
    centers, points = _clustered(rng, n=500)
    ivf = IVFIndex(points, "l2")
    extra = centers[:10] + 0.25
    for row in extra:
        ivf.add(row)
    for row in points[:8]:
        ivf.remove(row)
    survivors = np.vstack([points[8:], extra])
    brute = BruteForceIndex(survivors, "l2")
    queries = centers[rng.integers(0, len(centers), size=10)]
    for x in queries:
        bd, _ = brute.query(x, 5)
        vd, vi = ivf.query(x, 5)
        np.testing.assert_array_equal(bd, vd)
        assert not np.isin(vi, np.arange(8)).any()  # tombstones never return
