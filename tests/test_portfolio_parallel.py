"""Determinism harness for the parallel solver portfolio.

The process racer may let *any* exact method win — scheduling, stagger,
core count and warm-pool state all vary between runs — so the portfolio
pins its answer to the canonical (lex-min) witness.  These tests force
arbitrary winners with artificially skewed per-method start delays and
assert the answer is bit-identical regardless: same reason set, same
counterfactual point, warm or cold, one worker or three, including the
Proposition-1 tie instance.  They also pin the budget accounting (a
cancelled attempt never burns another attempt's budget, and the race
wall is the per-worker schedule, not the method count times the
budget) and that cancelled attempts leave pooled solvers reusable.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.knn import Dataset
from repro.portfolio import (
    CF_PORTFOLIO,
    MSR_PORTFOLIO,
    portfolio_closest_counterfactual,
    portfolio_minimum_sufficient_reason,
)
from repro.serve.cache import dataset_fingerprint
from repro.solvers import ProcessRacer, SATSolverPool

from .helpers import random_discrete_dataset


@pytest.fixture(scope="module")
def racer():
    """One shared 3-worker racer for the whole module (spawning is slow)."""
    racer = ProcessRacer(max_workers=3)
    yield racer
    racer.close()


def _instance(seed: int, n_lo: int = 5, n_hi: int = 9):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi))
    data = random_discrete_dataset(rng, n, 6, 6)
    x = rng.integers(0, 2, size=n).astype(float)
    return data, x


def _staggers(methods: tuple[str, ...]):
    """Delay patterns that hand the head start to every method in turn."""
    for lucky in methods:
        yield {m: (0.0 if m == lucky else 0.08) for m in methods}


def _method_combos(members: tuple[str, ...]):
    for r in range(1, len(members) + 1):
        yield from itertools.combinations(members, r)


class TestRaceDeterminism:
    """Same answer no matter which method wins the race."""

    def test_msr_every_combo_and_winner(self, racer):
        data, x = _instance(101)
        reference = portfolio_minimum_sufficient_reason(data, 1, "hamming", x)
        assert reference.exact and reference.canonical
        for combo in _method_combos(MSR_PORTFOLIO):
            for stagger in _staggers(combo):
                race = portfolio_minimum_sufficient_reason(
                    data, 1, "hamming", x,
                    methods=combo, parallel=True, racer=racer, stagger=stagger,
                )
                assert race.mode == "parallel"
                assert race.exact and race.canonical
                assert race.answer.X == reference.answer.X
                assert race.answer.size == reference.answer.size
                assert race.attempts[-1].status == "exact"

    def test_cf_every_combo_and_winner(self, racer):
        data, x = _instance(202)
        reference = portfolio_closest_counterfactual(data, 1, "hamming", x)
        assert reference.exact and reference.canonical
        for combo in _method_combos(CF_PORTFOLIO["hamming"]):
            for stagger in _staggers(combo):
                race = portfolio_closest_counterfactual(
                    data, 1, "hamming", x,
                    methods=combo, parallel=True, racer=racer, stagger=stagger,
                )
                assert race.mode == "parallel"
                assert race.exact and race.canonical
                assert race.answer.distance == reference.answer.distance
                np.testing.assert_array_equal(race.answer.y, reference.answer.y)

    def test_proposition1_tie_case_is_winner_independent(self, racer):
        # The classic Prop-1 edge: a point duplicated in both classes,
        # optimistic ties favoring class 1.  Every winner must return
        # the same canonical witness here too.
        data = Dataset(
            positives=[[0, 0, 1], [1, 1, 1]],
            negatives=[[0, 0, 1], [1, 0, 0]],
        )
        x = np.array([0.0, 0.0, 1.0])
        reference = portfolio_minimum_sufficient_reason(data, 1, "hamming", x)
        cf_reference = portfolio_closest_counterfactual(data, 1, "hamming", x)
        for stagger in _staggers(MSR_PORTFOLIO):
            race = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x, parallel=True, racer=racer, stagger=stagger,
            )
            assert race.answer.X == reference.answer.X
        for stagger in _staggers(CF_PORTFOLIO["hamming"]):
            race = portfolio_closest_counterfactual(
                data, 1, "hamming", x, parallel=True, racer=racer, stagger=stagger,
            )
            assert race.answer.distance == cf_reference.answer.distance
            np.testing.assert_array_equal(race.answer.y, cf_reference.answer.y)

    def test_repeated_seeded_races_are_stable(self, racer):
        # N seeded repetitions of the same skewed race: one answer set.
        data, x = _instance(303)
        answers = set()
        for round_ in range(5):
            stagger = {m: 0.05 * ((round_ + i) % 3) for i, m in enumerate(MSR_PORTFOLIO)}
            race = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x, parallel=True, racer=racer, stagger=stagger,
            )
            answers.add(frozenset(race.answer.X))
        assert len(answers) == 1

    def test_single_worker_race_matches_many_workers(self):
        # One worker degenerates to sequential-in-child; answers equal.
        data, x = _instance(404)
        solo = ProcessRacer(max_workers=1)
        try:
            narrow = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x, parallel=True, racer=solo,
            )
        finally:
            solo.close()
        wide = portfolio_minimum_sufficient_reason(data, 1, "hamming", x)
        assert narrow.mode == "parallel"
        assert narrow.answer.X == wide.answer.X


class TestPoolAfterCancellation:
    """Cancelled attempts must leave pooled solvers reusable."""

    def test_pool_state_reusable_after_races(self, racer):
        data, x = _instance(505)
        fp = dataset_fingerprint(data)
        pool = SATSolverPool()
        # Drive races that cancel attempts mid-flight (the slow methods
        # lose to the staggered winner) with the pool attached.
        for stagger in _staggers(MSR_PORTFOLIO):
            portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x,
                parallel=True, racer=racer, solver_pool=pool,
                fingerprint=fp, stagger=stagger,
            )
        assert racer.stats()["cancelled"] > 0
        # The pooled solver must still answer cold-identically for new
        # queries of the same dataset — warm state is never poisoned.
        rng = np.random.default_rng(506)
        for _ in range(3):
            q = rng.integers(0, 2, size=data.dimension).astype(float)
            warm = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", q, solver_pool=pool, fingerprint=fp,
            )
            cold = portfolio_minimum_sufficient_reason(data, 1, "hamming", q)
            assert warm.answer.X == cold.answer.X
            warm_cf = portfolio_closest_counterfactual(
                data, 1, "hamming", q, solver_pool=pool, fingerprint=fp,
            )
            cold_cf = portfolio_closest_counterfactual(data, 1, "hamming", q)
            assert warm_cf.answer.distance == cold_cf.answer.distance
            if cold_cf.answer.y is not None:
                np.testing.assert_array_equal(warm_cf.answer.y, cold_cf.answer.y)
        assert pool.stats()["hits"] > 0


class TestBudgetAccounting:
    """A cancelled attempt never burns another attempt's budget."""

    def test_stagger_is_not_billed_to_the_budget(self, racer):
        # Generous per-method budget, instant instance, slow staggers on
        # the losers: the race must end on the winner's clock plus the
        # grace window — not 3 x budget, and not stagger + budget.
        data, x = _instance(606)
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x,
            budget=30.0, parallel=True, racer=racer,
            stagger={"milp": 0.4, "sat": 0.4, "brute": 0.0},
        )
        assert race.exact
        assert race.elapsed_s < 10.0  # nowhere near 3 x 30 s
        for attempt in race.attempts:
            if attempt.status == "cancelled":
                # Cancelled before or during stagger: no budget burned.
                assert attempt.elapsed_s < 0.5

    def test_race_wall_is_schedule_not_method_count(self):
        # All methods exhaust a tiny budget on a hard instance; with one
        # worker per method the wall is ~budget + grace + slack, never
        # len(methods) x budget stacked on one attempt's clock.
        rng = np.random.default_rng(707)
        data = random_discrete_dataset(rng, 17, 40, 40)
        x = rng.integers(0, 2, size=17).astype(float)
        budget = 0.2
        racer = ProcessRacer(max_workers=3)
        try:
            race = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x,
                budget=budget, parallel=True, racer=racer,
                methods=("sat", "brute"), max_brute_dimension=17,
            )
        finally:
            racer.close()
        # Fell back to the anytime answer (or a method got lucky) —
        # either way the exact attempts ran concurrently: total elapsed
        # stays inside one budget window plus grace, slack, and the
        # anytime fallback, with a scheduling epsilon.
        assert race.elapsed_s <= budget + 1.0 + 0.25 + 2.0
        if not race.exact:
            assert race.method == "greedy-anytime"
            statuses = {a.status for a in race.attempts[:-1]}
            assert statuses <= {"timeout", "cancelled"}

    def test_zero_budget_parallel_matches_sequential_contract(self, racer):
        data, x = _instance(808)
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=0.0, parallel=True, racer=racer,
        )
        statuses = [a.status for a in race.attempts]
        assert statuses[:-1] == ["timeout"] * 3
        assert statuses[-1] == "anytime"
        assert race.method == "greedy-anytime"


class TestParallelContract:
    """Parallel mode preserves the sequential portfolio's error contract."""

    def test_all_members_inapplicable_raises(self, racer):
        rng = np.random.default_rng(909)
        data = random_discrete_dataset(rng, 6, 5, 5)
        x = rng.integers(0, 2, size=6).astype(float)
        with pytest.raises(ValidationError):
            portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x,
                methods=("brute",), max_brute_dimension=3,
                parallel=True, racer=racer,
            )

    def test_closed_racer_falls_back_to_sequential(self):
        data, x = _instance(111)
        closed = ProcessRacer(max_workers=1)
        closed.close()
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, parallel=True, racer=closed,
        )
        assert race.mode == "sequential"
        assert race.exact and race.canonical

    def test_provenance_records_cancellations(self, racer):
        data, x = _instance(222)
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x,
            parallel=True, racer=racer,
            stagger={"milp": 0.3, "sat": 0.3, "brute": 0.0},
        )
        assert race.exact
        statuses = {a.method: a.status for a in race.attempts}
        assert statuses["brute"] == "exact"
        assert race.attempts[-1].method == "brute"
        assert any(s == "cancelled" for s in statuses.values())
