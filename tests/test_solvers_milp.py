"""Tests for the MILP modeling layer and both engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.solvers.milp import MILPModel

ENGINES = ["scipy", "bnb"]


def knapsack_model(values, weights, capacity):
    m = MILPModel("knapsack")
    take = [m.add_binary(f"take[{i}]") for i in range(len(values))]
    m.add_constraint({t: w for t, w in zip(take, weights)}, "<=", capacity)
    m.set_objective({t: v for t, v in zip(take, values)}, maximize=True)
    return m, take


class TestModelBuilding:
    def test_bad_bounds(self):
        m = MILPModel()
        with pytest.raises(ValidationError):
            m.add_var(lb=2, ub=1)

    def test_bad_sense(self):
        m = MILPModel()
        x = m.add_var()
        with pytest.raises(ValidationError):
            m.add_constraint({x: 1.0}, "<", 0.0)

    def test_unknown_engine(self):
        m = MILPModel()
        m.add_var(lb=0, ub=1)
        with pytest.raises(ValidationError):
            m.solve(engine="gurobi")

    def test_coefficients_merge(self):
        m = MILPModel()
        x = m.add_var(lb=0, ub=10)
        # x + x <= 4  ->  x <= 2
        m.add_constraint({x: 1.0, x.index: 1.0}, "<=", 4.0)
        m.set_objective({x: 1.0}, maximize=True)
        assert m.solve().objective == pytest.approx(2.0)


@pytest.mark.parametrize("engine", ENGINES)
class TestEngines:
    def test_pure_lp(self, engine):
        m = MILPModel()
        x = m.add_var(lb=0)
        y = m.add_var(lb=0)
        m.add_constraint({x: 1, y: 2}, "<=", 4)
        m.add_constraint({x: 3, y: 1}, "<=", 6)
        m.set_objective({x: 1, y: 1}, maximize=True)
        res = m.solve(engine=engine)
        assert res.optimal
        assert res.objective == pytest.approx(2.8)

    def test_knapsack(self, engine):
        m, take = knapsack_model([10, 13, 7, 8], [3, 4, 2, 3], 6)
        res = m.solve(engine=engine)
        assert res.optimal
        # Enumerate all 2^4 subsets to get the true optimum.
        best = 0
        vals, ws = [10, 13, 7, 8], [3, 4, 2, 3]
        for mask in range(16):
            w = sum(ws[i] for i in range(4) if mask >> i & 1)
            v = sum(vals[i] for i in range(4) if mask >> i & 1)
            if w <= 6:
                best = max(best, v)
        assert res.objective == pytest.approx(best)

    def test_infeasible(self, engine):
        m = MILPModel()
        x = m.add_binary()
        m.add_constraint({x: 1}, ">=", 2)
        res = m.solve(engine=engine)
        assert res.status == "infeasible"

    def test_equality_constraints(self, engine):
        m = MILPModel()
        x = m.add_var(lb=0, ub=10, integer=True)
        y = m.add_var(lb=0, ub=10, integer=True)
        m.add_constraint({x: 1, y: 1}, "==", 7)
        m.set_objective({x: 1, y: 3})
        res = m.solve(engine=engine)
        assert res.optimal
        assert res.objective == pytest.approx(7.0)  # x=7, y=0
        assert res.value(x) == pytest.approx(7)

    def test_objective_constant_and_value(self, engine):
        m = MILPModel()
        x = m.add_binary("x")
        m.set_objective({x: -1}, constant=5.0)
        res = m.solve(engine=engine)
        assert res.objective == pytest.approx(4.0)
        assert res.value(x) == pytest.approx(1.0)

    def test_integer_forces_worse_objective(self, engine):
        # LP optimum is fractional (x = 1.5); MILP must settle for 1.
        m = MILPModel()
        x = m.add_var(lb=0, integer=True)
        m.add_constraint({x: 2}, "<=", 3)
        m.set_objective({x: 1}, maximize=True)
        res = m.solve(engine=engine)
        assert res.objective == pytest.approx(1.0)


class TestEnginesAgree:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 7),
    )
    @settings(max_examples=30)
    def test_random_knapsacks(self, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(1, 20, size=n).tolist()
        weights = rng.integers(1, 10, size=n).tolist()
        capacity = int(max(1, rng.integers(1, max(2, sum(weights)))))
        m1, _ = knapsack_model(values, weights, capacity)
        m2, _ = knapsack_model(values, weights, capacity)
        r1 = m1.solve(engine="scipy")
        r2 = m2.solve(engine="bnb")
        assert r1.status == r2.status == "optimal"
        assert r1.objective == pytest.approx(r2.objective)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_random_set_cover(self, seed):
        rng = np.random.default_rng(seed)
        n_sets, n_items = 6, 5
        membership = rng.integers(0, 2, size=(n_sets, n_items))
        # Make sure every item is coverable.
        for j in range(n_items):
            if membership[:, j].sum() == 0:
                membership[rng.integers(0, n_sets), j] = 1
        results = []
        for engine in ENGINES:
            m = MILPModel("setcover")
            pick = [m.add_binary(f"s{i}") for i in range(n_sets)]
            for j in range(n_items):
                m.add_constraint(
                    {pick[i]: 1 for i in range(n_sets) if membership[i, j]}, ">=", 1
                )
            m.set_objective({p: 1 for p in pick})
            results.append(m.solve(engine=engine))
        assert results[0].objective == pytest.approx(results[1].objective)
