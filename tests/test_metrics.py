"""Unit and property tests for repro.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.metrics import (
    HammingMetric,
    L1Metric,
    L2Metric,
    LInfMetric,
    LpMetric,
    get_metric,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)
vectors = hnp.arrays(np.float64, st.integers(1, 6), elements=finite_floats)


def paired_vectors():
    return st.integers(1, 6).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=finite_floats),
            hnp.arrays(np.float64, n, elements=finite_floats),
            hnp.arrays(np.float64, n, elements=finite_floats),
        )
    )


class TestGetMetric:
    @pytest.mark.parametrize(
        "spec, cls",
        [
            ("l1", L1Metric),
            ("manhattan", L1Metric),
            ("l2", L2Metric),
            ("euclidean", L2Metric),
            ("linf", LInfMetric),
            ("chebyshev", LInfMetric),
            ("hamming", HammingMetric),
            ("discrete", HammingMetric),
        ],
    )
    def test_aliases(self, spec, cls):
        assert isinstance(get_metric(spec), cls)

    def test_integer_spec_gives_lp(self):
        m = get_metric(3)
        assert isinstance(m, LpMetric)
        assert m.p == 3

    def test_lp_prefix_spec(self):
        assert get_metric("lp:4").p == 4
        assert get_metric("l5").p == 5

    def test_metric_instance_passthrough(self):
        m = L2Metric()
        assert get_metric(m) is m

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            get_metric("cosine")

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            LpMetric(0)


class TestKnownValues:
    def test_l1_example(self):
        assert get_metric("l1").distance([0, 0], [3, -4]) == 7.0

    def test_l2_example(self):
        assert get_metric("l2").distance([0, 0], [3, 4]) == 5.0

    def test_l3_example(self):
        d = get_metric(3).distance([0, 0], [1, 1])
        assert d == pytest.approx(2 ** (1 / 3))

    def test_linf_example(self):
        assert get_metric("linf").distance([0, 0], [3, -4]) == 4.0

    def test_hamming_example(self):
        assert get_metric("hamming").distance([0, 1, 1, 0], [1, 1, 0, 0]) == 2.0

    def test_pairwise_shape_and_values(self):
        m = L2Metric()
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        d = m.pairwise(a, b)
        assert d.shape == (2, 3)
        assert d[0, 2] == 0.0
        assert d[1, 1] == 1.0


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", ["l1", "l2", "lp:3", "linf"])
    @given(data=paired_vectors())
    def test_axioms_continuous(self, metric, data):
        x, y, z = data
        m = get_metric(metric)
        dxy = m.distance(x, y)
        assert dxy >= 0
        assert m.distance(x, x) == pytest.approx(0, abs=1e-9)
        assert dxy == pytest.approx(m.distance(y, x), rel=1e-9, abs=1e-9)
        assert m.distance(x, z) <= dxy + m.distance(y, z) + 1e-7

    @given(data=paired_vectors())
    def test_powers_is_monotone_surrogate(self, data):
        x, y, z = data
        for spec in ("l1", "l2", "lp:3"):
            m = get_metric(spec)
            pts = np.vstack([y, z])
            d = m.distances_to(pts, x)
            s = m.powers_to(pts, x)
            # Same order relation between the two candidate points.  No
            # absolute epsilon on the comparisons: distances and powers
            # live on different scales (d = 1e-7 is s = 1e-14 under l2),
            # so a shared slack breaks monotonicity spuriously; genuine
            # float near-ties escape through the isclose guard instead.
            assert (d[0] < d[1]) == (s[0] < s[1]) or np.isclose(
                d[0], d[1], rtol=1e-9, atol=1e-12
            )

    @given(
        n=st.integers(1, 8),
        data=st.data(),
    )
    def test_hamming_axioms(self, n, data):
        bits = st.lists(st.sampled_from([0.0, 1.0]), min_size=n, max_size=n)
        x = np.array(data.draw(bits))
        y = np.array(data.draw(bits))
        m = HammingMetric()
        d = m.distance(x, y)
        assert d == int(d)
        assert 0 <= d <= n
        assert m.distance(x, x) == 0
        assert d == m.distance(y, x)


class TestValidation:
    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            L2Metric().distance([np.nan, 0], [0, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            L2Metric().distance([1, 2], [1, 2, 3])
