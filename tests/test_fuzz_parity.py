"""Randomized differential harness for streaming mutations.

"Mutated engine ≡ freshly rebuilt engine" is the invariant that makes
mutable datasets safe: whatever script of inserts, deletes and queries
an engine absorbs incrementally, every answer must be **bit-identical**
to an engine built from scratch over the same final contents — labels,
margins, radii, and tie behavior (the Proposition 1 ``r+ == r-`` case)
alike, across all four backends and both metrics (the IVF backend's
bucket appends, tombstones and staleness-triggered requantizes ride the
same scripts).

The harness generates seeded random scripts (``FUZZ_ROUNDS`` seeds per
backend/metric configuration, default 50; the nightly CI job raises it
to 200), applies each to

* a **mutated engine** (incremental backend maintenance, targeted
  cache invalidation), and
* an independently **folded dataset** (the functional
  :meth:`~repro.knn.Dataset.with_added` /
  :meth:`~repro.knn.Dataset.with_removed` semantics),

and at every query step compares the mutated engine against a fresh
engine built from the folded dataset.  The same discipline covers the
multiclass engine (scripts over integer label vectors, parity on
per-class radii/margins and both vote modes against a rebuilt
:class:`~repro.knn.MultiClassEngine`) and the distance-weighted vote
(mutated engine ≡ rebuilt engine ≡ the brute-force weighted reference).
Alongside the differential core
live the metamorphic mutation properties the ISSUE calls out:
insert-then-remove is an identity (including multiplicity counts), and
removing a point never changes answers whose k-neighborhood excluded
it (which also pins the targeted radii-cache invalidation).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Dataset, ValidationError
from repro.knn import QueryEngine
from repro.serve.cache import dataset_fingerprint

#: random scripts per (backend, metric) configuration; CI's fast fuzz
#: job runs the default, the nightly extended job sets FUZZ_ROUNDS=200.
FUZZ_ROUNDS = int(os.environ.get("FUZZ_ROUNDS", "50"))

#: every backend crossed with both metrics it supports (bitpack is
#: Hamming-only by construction).
CONFIGS = [
    ("dense", "l2"),
    ("dense", "hamming"),
    ("kdtree", "l2"),
    ("kdtree", "hamming"),
    ("bitpack", "hamming"),
    ("ivf", "l2"),
    ("ivf", "hamming"),
]


def _random_points(rng: np.random.Generator, count: int, dim: int, metric: str):
    """Random points from a *small* exact-arithmetic grid.

    Binary for Hamming (bitpack-compatible, tie-rich), a {0,1,2} grid
    for l2 — integer-valued data keeps every kernel exact, so
    "bit-identical" is a meaningful demand, and the tiny value space
    forces duplicate rows (multiplicity merging) and distance ties
    (the Proposition 1 case) to occur constantly.
    """
    high = 2 if metric == "hamming" else 3
    return rng.integers(0, high, size=(count, dim)).astype(float)


def _existing_rows(data: Dataset):
    """Every (row, label, multiplicity) triple currently in *data*."""
    triples = [
        (row, 1, int(m))
        for row, m in zip(data.positives, data.positive_multiplicities)
    ]
    triples += [
        (row, 0, int(m))
        for row, m in zip(data.negatives, data.negative_multiplicities)
    ]
    return triples


def _assert_query_parity(engine: QueryEngine, fresh: QueryEngine, queries, k: int):
    """Bit-identical labels, margins, radii and ties, batch and single."""
    np.testing.assert_array_equal(
        engine.classify_batch(queries, k), fresh.classify_batch(queries, k)
    )
    np.testing.assert_array_equal(
        engine.margins_batch(queries, k), fresh.margins_batch(queries, k)
    )
    mutated_radii = engine.radii_batch(queries, k)
    rebuilt_radii = fresh.radii_batch(queries, k)
    np.testing.assert_array_equal(mutated_radii[0], rebuilt_radii[0])
    np.testing.assert_array_equal(mutated_radii[1], rebuilt_radii[1])
    x = queries[0]
    assert engine.radii(x, k) == fresh.radii(x, k)
    assert engine.classify(x, k) == fresh.classify(x, k)
    assert engine.margin(x, k) == fresh.margin(x, k)
    # Tie behavior: the k nearest (multiplicity-expanded, positives
    # first, index-order tie-breaking) must agree point for point.
    points_a, labels_a = engine.neighbors(x, k)
    points_b, labels_b = fresh.neighbors(x, k)
    np.testing.assert_array_equal(points_a, points_b)
    np.testing.assert_array_equal(labels_a, labels_b)


def _run_script(seed: int, backend: str, metric: str) -> int:
    """One random insert/delete/query script; returns observed Prop-1 ties."""
    rng = np.random.default_rng(seed)
    dim = 5 if metric == "hamming" else 4
    data = Dataset(
        _random_points(rng, 6, dim, metric),
        _random_points(rng, 6, dim, metric),
    )
    engine = QueryEngine(data, metric, backend=backend)
    folded = data
    ties = 0
    for _ in range(rng.integers(8, 14)):
        op = rng.choice(["add", "remove", "query"], p=[0.35, 0.25, 0.4])
        if op == "remove" and len(folded) <= 3:
            op = "add"  # keep k=3 queries well-defined
        if op == "add":
            count = int(rng.integers(1, 4))
            points = _random_points(rng, count, dim, metric)
            labels = rng.integers(0, 2, size=count)
            mult = rng.integers(1, 3, size=count)
            version = engine.version
            engine.add_points(points, labels, mult)
            folded = folded.with_added(points, labels, mult)
            assert engine.version == version + 1
        elif op == "remove":
            row, label, available = _existing_rows(folded)[
                rng.integers(0, len(_existing_rows(folded)))
            ]
            count = int(rng.integers(1, available + 1))
            if len(folded) - count < 1:
                continue
            engine.remove_points([row], [label], [count])
            folded = folded.with_removed([row], [label], [count])
        else:
            k = int(rng.choice([1, 3]))
            if len(folded) < k:
                continue
            queries = _random_points(rng, 4, dim, metric)
            fresh = QueryEngine(folded, metric, backend=backend)
            _assert_query_parity(engine, fresh, queries, k)
            r_pos, r_neg = engine.radii_batch(queries, k)
            ties += int(np.sum((r_pos == r_neg) & np.isfinite(r_pos)))
    # The engine's own snapshot must equal the functional fold exactly —
    # same rows, same order, same multiplicities (fingerprints cover all).
    assert dataset_fingerprint(engine.dataset) == dataset_fingerprint(folded)
    final_queries = _random_points(rng, 4, dim, metric)
    _assert_query_parity(
        engine, QueryEngine(folded, metric, backend=backend), final_queries, 3
    )
    return ties


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_fuzz_differential_parity(backend, metric):
    """FUZZ_ROUNDS seeded scripts: mutated engine ≡ rebuilt engine."""
    ties = 0
    for seed in range(FUZZ_ROUNDS):
        try:
            ties += _run_script(seed, backend, metric)
        except AssertionError as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"differential parity broke for seed={seed}, "
                f"backend={backend}, metric={metric}: {exc}"
            ) from exc
    # The grid is tie-rich by construction; a run that never exercised
    # the Proposition 1 r+ == r- case would be vacuous on ties.
    assert ties > 0


# -- multiclass & weighted-vote differential scripts ---------------------

#: multiclass scripts compare full per-class batches plus two vote modes
#: per query step, so they run at half the binary round count.
MULTICLASS_FUZZ_ROUNDS = max(2, FUZZ_ROUNDS // 2)


def _existing_multiclass_rows(data):
    """Every (row, label, multiplicity) triple currently in *data*."""
    return [
        (row, int(label), int(m))
        for label in data.classes
        for row, m in zip(
            data.class_points(label), data.class_multiplicities(label)
        )
    ]


def _assert_multiclass_parity(engine, fresh, queries, k: int) -> int:
    """Bit-identical per-class answers and votes; returns observed ties."""
    from repro.knn.reference import multiclass_classify_by_definition

    radii, rest = engine.class_radii_batch(queries, k)
    fresh_radii, fresh_rest = fresh.class_radii_batch(queries, k)
    np.testing.assert_array_equal(radii, fresh_radii)
    np.testing.assert_array_equal(rest, fresh_rest)
    np.testing.assert_array_equal(
        engine.class_margins_batch(queries, k),
        fresh.class_margins_batch(queries, k),
    )
    for vote in ("uniform", "distance"):
        got = engine.classify_batch(queries, k, vote=vote)
        np.testing.assert_array_equal(got, fresh.classify_batch(queries, k, vote=vote))
        # ... and the brute reference agrees with both (oracle triangle).
        np.testing.assert_array_equal(
            got,
            [
                multiclass_classify_by_definition(
                    fresh.dataset, k, engine.metric, x, vote=vote
                )
                for x in queries
            ],
        )
    x = queries[0]
    np.testing.assert_array_equal(engine.class_radii(x, k), fresh.class_radii(x, k))
    assert engine.classify(x, k) == fresh.classify(x, k)
    return int(np.sum((radii == rest) & np.isfinite(radii)))


def _run_multiclass_script(seed: int, backend: str, metric: str) -> int:
    """One random multiclass insert/delete/query script; returns ties."""
    from repro.knn import MultiClassDataset, MultiClassEngine

    rng = np.random.default_rng(seed)
    dim = 5 if metric == "hamming" else 4
    n_classes = 3
    points = _random_points(rng, 9, dim, metric)
    labels = rng.integers(0, n_classes, size=9)
    labels[:n_classes] = np.arange(n_classes)
    data = MultiClassDataset(points, labels)
    engine = MultiClassEngine(data, metric, backend=backend)
    folded = data
    ties = 0
    for _ in range(int(rng.integers(8, 14))):
        op = rng.choice(["add", "remove", "query"], p=[0.35, 0.25, 0.4])
        if op == "remove" and len(folded) <= 4:
            op = "add"
        if op == "add":
            count = int(rng.integers(1, 4))
            batch = _random_points(rng, count, dim, metric)
            batch_labels = rng.integers(0, n_classes, size=count)
            mult = rng.integers(1, 3, size=count)
            version = engine.version
            engine.add_points(batch, batch_labels, mult)
            folded = folded.with_added(batch, batch_labels, mult)
            assert engine.version == version + 1
        elif op == "remove":
            rows = _existing_multiclass_rows(folded)
            row, label, available = rows[rng.integers(0, len(rows))]
            count = int(rng.integers(1, available + 1))
            try:
                engine.remove_points([row], [label], [count])
            except ValidationError:
                # Emptying a class (multiclass needs >= 2) must fail the
                # functional fold identically, and leave the engine as-is.
                with pytest.raises(ValidationError):
                    folded.with_removed([row], [label], [count])
                continue
            folded = folded.with_removed([row], [label], [count])
        else:
            k = int(rng.choice([1, 3]))
            if len(folded) < k:
                continue
            queries = _random_points(rng, 3, dim, metric)
            fresh = MultiClassEngine(folded, metric, backend=backend)
            ties += _assert_multiclass_parity(engine, fresh, queries, k)
    # The engine's snapshot must equal the functional fold exactly — the
    # multiclass fingerprint hashes per-class points and multiplicities.
    assert dataset_fingerprint(engine.dataset) == dataset_fingerprint(folded)
    final = _random_points(rng, 3, dim, metric)
    ties += _assert_multiclass_parity(
        engine, MultiClassEngine(folded, metric, backend=backend), final, 3
    )
    return ties


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_fuzz_multiclass_differential_parity(backend, metric):
    """Seeded multiclass scripts: mutated engine ≡ rebuilt ≡ reference."""
    ties = 0
    for seed in range(MULTICLASS_FUZZ_ROUNDS):
        try:
            ties += _run_multiclass_script(seed, backend, metric)
        except AssertionError as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"multiclass parity broke for seed={seed}, "
                f"backend={backend}, metric={metric}: {exc}"
            ) from exc
    # Per-class r == rest ties are the multiclass Proposition 1 case.
    assert ties > 0


def _run_weighted_script(seed: int, backend: str, metric: str) -> int:
    """One weighted-vote script: mutated ≡ rebuilt ≡ weighted reference."""
    from repro.knn.reference import classify_weighted_by_definition

    rng = np.random.default_rng(seed)
    dim = 5 if metric == "hamming" else 4
    data = Dataset(
        _random_points(rng, 6, dim, metric),
        _random_points(rng, 6, dim, metric),
    )
    engine = QueryEngine(data, metric, backend=backend)
    folded = data
    ties = 0
    for _ in range(int(rng.integers(6, 10))):
        op = rng.choice(["add", "remove", "query"], p=[0.35, 0.25, 0.4])
        if op == "remove" and len(folded) <= 3:
            op = "add"
        if op == "add":
            count = int(rng.integers(1, 4))
            points = _random_points(rng, count, dim, metric)
            labels = rng.integers(0, 2, size=count)
            engine.add_points(points, labels)
            folded = folded.with_added(points, labels)
        elif op == "remove":
            rows = _existing_rows(folded)
            row, label, available = rows[rng.integers(0, len(rows))]
            if len(folded) - 1 < 1:
                continue
            engine.remove_points([row], [label])
            folded = folded.with_removed([row], [label])
        else:
            k = int(rng.choice([1, 3]))
            if len(folded) < k:
                continue
            queries = _random_points(rng, 3, dim, metric)
            fresh = QueryEngine(folded, metric, backend=backend)
            got = engine.classify_batch(queries, k, vote="distance")
            np.testing.assert_array_equal(
                got, fresh.classify_batch(queries, k, vote="distance")
            )
            reference = [
                classify_weighted_by_definition(folded, k, metric, x)
                for x in queries
            ]
            np.testing.assert_array_equal(got, reference)
            assert engine.classify(queries[0], k, vote="distance") == int(got[0])
            r_pos, r_neg = engine.radii_batch(queries, k)
            ties += int(np.sum((r_pos == r_neg) & np.isfinite(r_pos)))
    assert dataset_fingerprint(engine.dataset) == dataset_fingerprint(folded)
    return ties


@pytest.mark.parametrize("backend,metric", CONFIGS)
def test_fuzz_weighted_vote_parity(backend, metric):
    """Seeded weighted-vote scripts across mutations, all backends."""
    ties = 0
    for seed in range(MULTICLASS_FUZZ_ROUNDS):
        try:
            ties += _run_weighted_script(seed, backend, metric)
        except AssertionError as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"weighted-vote parity broke for seed={seed}, "
                f"backend={backend}, metric={metric}: {exc}"
            ) from exc
    assert ties > 0


# -- metamorphic properties ---------------------------------------------


@pytest.fixture(params=["dense", "kdtree", "bitpack", "ivf"])
def backend(request):
    """Every mutable backend (metric fixed to Hamming, which all support)."""
    return request.param


def _random_engine(rng, backend, *, dim=5, size=8):
    data = Dataset(
        _random_points(rng, size, dim, "hamming"),
        _random_points(rng, size, dim, "hamming"),
    )
    return data, QueryEngine(data, "hamming", backend=backend)


def test_insert_then_remove_is_identity(rng, backend):
    """Adding a batch and removing it restores the dataset bit for bit."""
    data, engine = _random_engine(rng, backend)
    before = dataset_fingerprint(engine.dataset)
    queries = _random_points(rng, 6, 5, "hamming")
    answers = [engine.classify_batch(queries, 3), *engine.radii_batch(queries, 3)]
    points = _random_points(rng, 4, 5, "hamming")
    labels = rng.integers(0, 2, size=4)
    mult = rng.integers(1, 4, size=4)
    engine.add_points(points, labels, mult)
    engine.remove_points(points, labels, mult)
    after = dataset_fingerprint(engine.dataset)
    # Identity includes multiplicity counts: the fingerprint hashes both
    # point matrices and both multiplicity vectors.
    assert before == after
    np.testing.assert_array_equal(answers[0], engine.classify_batch(queries, 3))
    r_pos, r_neg = engine.radii_batch(queries, 3)
    np.testing.assert_array_equal(answers[1], r_pos)
    np.testing.assert_array_equal(answers[2], r_neg)


def test_insert_then_remove_identity_on_existing_row(rng, backend):
    """Multiplicity round-trips through increments of pre-existing rows."""
    data, engine = _random_engine(rng, backend)
    row = np.array(data.positives[0])
    engine.add_points([row, row], [1, 1], [2, 3])
    assert int(engine.dataset.positive_multiplicities[0]) == 6
    engine.remove_points([row], [1], [5])
    assert dataset_fingerprint(engine.dataset) == dataset_fingerprint(data)


def test_removal_outside_neighborhood_changes_nothing(rng, backend):
    """Removing a point beyond a query's k-neighborhood leaves its answer.

    This is the metamorphic face of the targeted cache invalidation:
    the answers are *cached* before the removal, and the far point's
    power exceeds both cached radii, so the engine must keep serving
    the identical (still-valid) cached radii afterwards.
    """
    rng_local = np.random.default_rng(7)
    for trial in range(20):
        n = 6
        pos = rng_local.integers(0, 2, size=(6, n)).astype(float)
        neg = rng_local.integers(0, 2, size=(6, n)).astype(float)
        data = Dataset(pos, neg)
        engine = QueryEngine(data, "hamming", backend=backend)
        x = rng_local.integers(0, 2, size=n).astype(float)
        k = 3
        r_pos, r_neg = engine.radii(x, k)  # primes both caches
        label, margin = engine.classify(x, k), engine.margin(x, k)
        ball = max(r_pos, r_neg)
        far = [
            (row, lab)
            for row, lab, _ in _existing_rows(data)
            if float(np.abs(np.asarray(row) - x).sum()) > ball
        ]
        if not far:
            continue
        row, lab = far[rng_local.integers(0, len(far))]
        engine.remove_points([row], [lab])
        assert engine.radii(x, k) == (r_pos, r_neg)
        assert engine.classify(x, k) == label
        assert engine.margin(x, k) == margin
        # ... and the cached entry survived (it was never invalidated).
        assert engine.cache_info()["radii_size"] >= 1
        fresh = QueryEngine(engine.dataset, "hamming", backend=backend)
        assert fresh.radii(x, k) == (r_pos, r_neg)


def test_targeted_invalidation_evicts_inside_ball(rng, backend):
    """The converse: a point landing inside the ball refreshes the radii."""
    data, engine = _random_engine(rng, backend)
    x = _random_points(rng, 1, 5, "hamming")[0]
    engine.radii(x, 3)
    # Insert k copies of the query point itself: distance 0, inside any
    # finite ball — the cached radii must be evicted and recomputed.
    engine.add_points([x], [1], [3])
    fresh = QueryEngine(engine.dataset, "hamming", backend=backend)
    assert engine.radii(x, 3) == fresh.radii(x, 3)
    assert engine.radii(x, 3)[0] == 0.0


# -- mutation validation ------------------------------------------------


def test_mutation_validation_errors(rng):
    data = Dataset([[0.0, 1.0]], [[1.0, 0.0]], discrete=True)
    engine = QueryEngine(data, "hamming")
    with pytest.raises(ValidationError):
        engine.add_points([[0.5, 0.5]], [1])  # discrete data must be 0/1
    with pytest.raises(ValidationError):
        engine.add_points([[0.0, 1.0, 0.0]], [1])  # dimension mismatch
    with pytest.raises(ValidationError):
        engine.add_points(np.empty((0, 2)), [])  # empty batch
    with pytest.raises(ValidationError):
        engine.add_points([[0.0, 0.0]], [1], [0])  # multiplicity < 1
    with pytest.raises(ValidationError):
        engine.remove_points([[0.0, 0.0]], [1])  # absent point
    with pytest.raises(ValidationError):
        engine.remove_points([[0.0, 1.0]], [0])  # wrong class
    with pytest.raises(ValidationError):
        engine.remove_points([[0.0, 1.0]], [1], [2])  # multiplicity too high
    with pytest.raises(ValidationError):  # cannot empty the dataset
        engine.remove_points([[0.0, 1.0], [1.0, 0.0]], [1, 0])
    # A failed removal must leave the engine untouched (validated upfront).
    assert engine.version == 0
    assert len(engine.dataset) == 2


def test_bitpack_rejects_non_binary_insert():
    """An *explicitly requested* bitpack backend is a contract: reject."""
    data = Dataset([[0.0, 1.0]], [[1.0, 0.0]])
    engine = QueryEngine(data, "hamming", backend="bitpack")
    with pytest.raises(ValidationError):
        engine.add_points([[2.0, 0.0]], [1])
    assert engine.version == 0 and engine.backend == "bitpack"


def test_auto_bitpack_degrades_to_dense_on_non_binary_insert(rng):
    """An auto-selected bitpack backend degrades instead of refusing.

    Mutation acceptance must not depend on which backend the auto rule
    happened to pick for the data seen so far: the same insert that a
    dense engine accepts is accepted here, and answers stay identical
    to a rebuilt engine after the fallback.
    """
    data = Dataset([[0.0, 1.0], [1.0, 1.0]], [[1.0, 0.0], [0.0, 0.0]])
    engine = QueryEngine(data, "hamming")  # binary + hamming -> auto bitpack
    assert engine.backend == "bitpack"
    engine.add_points([[2.0, 0.0]], [1])
    assert engine.backend == "dense" and engine.version == 1
    fresh = QueryEngine(engine.dataset, "hamming")
    queries = np.array([[2.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    np.testing.assert_array_equal(
        engine.classify_batch(queries, 3), fresh.classify_batch(queries, 3)
    )
    assert engine.radii(queries[0], 3) == fresh.radii(queries[0], 3)


def test_dataset_functional_mutation_validation():
    data = Dataset([[0.0, 1.0]], [[1.0, 0.0]])
    with pytest.raises(ValidationError):
        data.with_removed([[0.0, 0.0]], [1])
    with pytest.raises(ValidationError):
        data.with_removed([[0.0, 1.0]], [1], [2])
    with pytest.raises(ValidationError):
        data.with_removed([[0.0, 1.0], [1.0, 0.0]], [1, 0])
    with pytest.raises(ValidationError):
        data.with_added(np.empty((0, 2)), [])
    grown = data.with_added([[0.0, 1.0], [1.0, 1.0]], [1, 1], [2, 1])
    assert grown.n_positive == 4 and grown.n_negative == 1
    assert int(grown.positive_multiplicities[0]) == 3


def test_distance_cache_is_extended_not_flushed(rng):
    """Inserts extend cached distance vectors instead of dropping them."""
    data, engine = _random_engine(rng, "dense")
    x = _random_points(rng, 1, 5, "hamming")[0]
    engine.powers(x)
    assert engine.cache_info()["size"] == 1
    points = _random_points(rng, 3, 5, "hamming")
    engine.add_points(points, [1, 0, 1])
    assert engine.cache_info()["size"] == 1  # still cached, not flushed
    pos_d, neg_d = engine.powers(x)  # served from cache (extended)
    assert engine.cache_info()["hits"] == 1
    fresh = QueryEngine(engine.dataset, "hamming")
    fresh_pos, fresh_neg = fresh.powers(x)
    np.testing.assert_array_equal(pos_d, fresh_pos)
    np.testing.assert_array_equal(neg_d, fresh_neg)


# -- portfolio warm-pool parity under mutation ---------------------------

#: portfolio scripts are NP-solve heavy, so the differential harness
#: runs a tenth of the engine-level round count per run.
PORTFOLIO_FUZZ_ROUNDS = max(2, FUZZ_ROUNDS // 10)


def _portfolio_script(seed: int) -> int:
    """One add/remove/query script: warm-pool serving vs cold solves.

    Every query step answers through the serving layer (warm pooled SAT
    solvers, keyed by the ``@vN`` versioned fingerprint) and through a
    cold portfolio call over the independently folded dataset — the two
    must be bit-identical, whatever mutations the pool absorbed.  After
    every step, pooled solvers for superseded versions must be provably
    gone: each pooled fingerprint equals the service's *current*
    versioned fingerprint.  Returns the pool's lifetime hit count.
    """
    from repro.portfolio import (
        portfolio_closest_counterfactual,
        portfolio_minimum_sufficient_reason,
    )
    from repro.serve import ExplanationService

    rng = np.random.default_rng(seed)
    dim = 5
    data = Dataset(
        _random_points(rng, 6, dim, "hamming"),
        _random_points(rng, 6, dim, "hamming"),
    )
    service = ExplanationService(cache_size=0)  # no result cache: every
    fingerprint = service.add_dataset(data)     # query exercises the pool
    folded = data
    for _ in range(int(rng.integers(6, 10))):
        op = rng.choice(["add", "remove", "query"], p=[0.3, 0.2, 0.5])
        if op == "remove" and len(folded) <= 4:
            op = "add"
        if op == "add":
            count = int(rng.integers(1, 3))
            points = _random_points(rng, count, dim, "hamming")
            labels = rng.integers(0, 2, size=count)
            out = service.add_points(fingerprint, points, labels)
            folded = folded.with_added(points, labels)
            fingerprint = out["fingerprint"]
        elif op == "remove":
            rows = _existing_rows(folded)
            row, label, _ = rows[rng.integers(0, len(rows))]
            try:
                out = service.remove_points(fingerprint, [row], [label])
            except ValidationError:
                continue  # e.g. removal would empty a class; skip the step
            folded = folded.with_removed([row], [label])
            fingerprint = out["fingerprint"]
        else:
            x = _random_points(rng, 1, dim, "hamming")[0]
            got = service.submit(
                fingerprint, "minimum_sr", x,
                k=1, metric="hamming", solver="portfolio",
            ).payload
            cold = portfolio_minimum_sufficient_reason(folded, 1, "hamming", x)
            assert got["X"] == sorted(int(i) for i in cold.answer.X)
            assert got["size"] == int(cold.answer.size)
            got_cf = service.submit(
                fingerprint, "counterfactual", x,
                k=1, metric="hamming", solver="portfolio",
            ).payload
            cold_cf = portfolio_closest_counterfactual(folded, 1, "hamming", x)
            if cold_cf.answer.y is None:
                assert got_cf["y"] is None
            else:
                assert got_cf["distance"] == float(cold_cf.answer.distance)
                np.testing.assert_array_equal(
                    np.asarray(got_cf["y"]), cold_cf.answer.y
                )
        # Superseded @vN pooled solvers are provably evicted: whatever
        # the script did, every pooled fingerprint is the current one.
        assert set(service.solver_pool.fingerprints()) <= set(service.fingerprints())
    # Deterministic warm-reuse probe: the same query twice with no
    # mutation in between — the second solve must lease the solver the
    # first one pooled, whatever keys the random script happened to use.
    x = _random_points(rng, 1, dim, "hamming")[0]
    hits_before = service.solver_pool.stats()["hits"]
    for _ in range(2):
        got = service.submit(
            fingerprint, "minimum_sr", x,
            k=1, metric="hamming", solver="portfolio",
        ).payload
    cold = portfolio_minimum_sufficient_reason(folded, 1, "hamming", x)
    assert got["X"] == sorted(int(i) for i in cold.answer.X)
    assert got["size"] == int(cold.answer.size)
    assert service.solver_pool.stats()["hits"] > hits_before
    # ... and the engine the pool answered against equals the fold.
    assert dataset_fingerprint(service.dataset(fingerprint)) == dataset_fingerprint(
        folded
    )
    return service.solver_pool.stats()["hits"]


def test_fuzz_portfolio_pool_parity():
    """Seeded scripts: warm-pool portfolio serving ≡ cold solves."""
    hits = 0
    for seed in range(PORTFOLIO_FUZZ_ROUNDS):
        try:
            hits += _portfolio_script(seed)
        except AssertionError as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"portfolio pool parity broke for seed={seed}: {exc}"
            ) from exc
    # Vacuity guard: the scripts must actually have reused warm solvers.
    assert hits > 0


def test_map_shards_and_pickling_after_mutation(rng):
    """A mutated engine still pickles and shards identically."""
    import pickle

    data, engine = _random_engine(rng, "bitpack", size=40)
    points = _random_points(rng, 5, 5, "hamming")
    engine.add_points(points, [1, 0, 1, 0, 1])
    engine.remove_points(points[:2], [1, 0])
    queries = _random_points(rng, 70, 5, "hamming")
    direct = engine.classify_batch(queries, 3)
    clone = pickle.loads(pickle.dumps(engine))
    np.testing.assert_array_equal(direct, clone.classify_batch(queries, 3))
    np.testing.assert_array_equal(
        direct, engine.map_shards("classify_batch", queries, 3, workers=2,
                                  min_shard_rows=16)
    )
    # ... and the clone keeps mutating correctly (views re-derived).
    clone.add_points(points[:1], [0])
    fresh = QueryEngine(clone.dataset, "hamming", backend="bitpack")
    np.testing.assert_array_equal(
        clone.classify_batch(queries, 3), fresh.classify_batch(queries, 3)
    )
