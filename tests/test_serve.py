"""Tests for the :mod:`repro.serve` layer: cache semantics, batching, HTTP.

The cache tests pin the contract the ISSUE asks for: LRU eviction
order, dataset-fingerprint invalidation, cross-method key isolation,
and bit-identical answers on a cache hit versus a cold solve —
including the Proposition 1 tie case (``r+ == r-`` classifies 1).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import (
    Dataset,
    ExplanationService,
    ValidationError,
    closest_counterfactual,
    dataset_fingerprint,
    minimum_sufficient_reason,
    serve_http,
)
from repro.knn import QueryEngine
from repro.serve import BATCH_METHODS, ResultCache, request_key
from repro.serve.http import jsonable

from .helpers import random_discrete_dataset


@pytest.fixture
def data(rng):
    """A small random discrete dataset shared across the serve tests."""
    return random_discrete_dataset(rng, 8, 12, 12)


@pytest.fixture
def service(data):
    """A service with *data* registered; fingerprint on ``service.fp``."""
    service = ExplanationService(cache_size=64)
    service.fp = service.add_dataset(data)
    return service


def _queries(rng, n, count):
    """Distinct random boolean query vectors."""
    seen = set()
    out = []
    while len(out) < count:
        x = rng.integers(0, 2, size=n).astype(float)
        if x.tobytes() not in seen:
            seen.add(x.tobytes())
            out.append(x)
    return out


# -- fingerprints -------------------------------------------------------


def test_fingerprint_is_content_addressed():
    a = Dataset([[0, 1], [1, 0]], [[1, 1]], discrete=True)
    b = Dataset([[0, 1], [1, 0]], [[1, 1]], discrete=True)
    c = Dataset([[0, 1], [1, 0]], [[0, 0]], discrete=True)
    assert dataset_fingerprint(a) == dataset_fingerprint(b)
    assert dataset_fingerprint(a) != dataset_fingerprint(c)


def test_fingerprint_covers_multiplicities_and_flag():
    plain = Dataset([[0, 1]], [[1, 1]])
    weighted = Dataset([[0, 1]], [[1, 1]], positive_multiplicities=[3])
    discrete = Dataset([[0, 1]], [[1, 1]], discrete=True)
    prints = {dataset_fingerprint(d) for d in (plain, weighted, discrete)}
    assert len(prints) == 3


def test_add_dataset_is_idempotent(service, data):
    again = Dataset(data.positives, data.negatives, discrete=data.discrete)
    assert service.add_dataset(again) == service.fp
    assert service.stats()["datasets"] == 1


# -- LRU semantics ------------------------------------------------------


def test_lru_eviction_order(rng, service):
    service.cache.maxsize = 3
    queries = _queries(rng, 8, 4)
    keys = []
    for x in queries[:3]:
        keys.append(service.submit(service.fp, "classify", x, k=3).request.key)
    assert service.cache.keys() == keys  # oldest first
    # Touching the oldest entry refreshes its recency...
    assert service.submit(service.fp, "classify", queries[0], k=3).cached
    assert service.cache.keys() == [keys[1], keys[2], keys[0]]
    # ...so the next insertion evicts keys[1], not keys[0].
    k3 = service.submit(service.fp, "classify", queries[3], k=3).request.key
    assert service.cache.keys() == [keys[2], keys[0], k3]
    assert service.cache.stats()["evictions"] == 1
    assert not service.submit(service.fp, "classify", queries[1], k=3).cached


def test_cache_size_zero_disables_caching(rng, data):
    service = ExplanationService(cache_size=0)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    assert not service.submit(fp, "classify", x, k=3).cached
    assert not service.submit(fp, "classify", x, k=3).cached
    assert len(service.cache) == 0


# -- invalidation -------------------------------------------------------


def test_fingerprint_invalidation_is_scoped(rng, service, data):
    other = random_discrete_dataset(rng, 8, 10, 10)
    fp2 = service.add_dataset(other)
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)
    service.submit(fp2, "classify", x, k=3)
    removed = service.invalidate(service.fp)
    assert removed == 1
    # The invalidated dataset's entry re-solves; the other still hits.
    assert not service.submit(service.fp, "classify", x, k=3).cached
    assert service.submit(fp2, "classify", x, k=3).cached


def test_remove_dataset_drops_engines_and_cache(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)
    assert service.stats()["engines"] == 1
    assert service.remove_dataset(service.fp) == 1
    stats = service.stats()
    assert stats["datasets"] == 0 and stats["engines"] == 0
    with pytest.raises(ValidationError):
        service.submit(service.fp, "classify", x, k=3)


# -- key isolation ------------------------------------------------------


def test_cross_method_key_isolation(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    payloads = {}
    for method in BATCH_METHODS:
        payloads[method] = service.submit(service.fp, method, x, k=3).payload
    assert len(service.cache) == 3  # one entry per method, no collisions
    assert set(payloads["classify"]) == {"label"}
    assert set(payloads["margin"]) == {"margin"}
    assert set(payloads["radii"]) == {"r_pos", "r_neg"}
    # Params are part of the key too: a different k is a different entry.
    service.submit(service.fp, "classify", x, k=1)
    assert len(service.cache) == 4


def test_solver_choice_is_part_of_the_key(rng, service, data):
    x = rng.integers(0, 2, size=8).astype(float)
    milp = service.submit(service.fp, "minimum_sr", x, k=1, solver="milp")
    sat = service.submit(service.fp, "minimum_sr", x, k=1, solver="sat")
    assert milp.request.key != sat.request.key
    assert milp.payload["size"] == sat.payload["size"]  # both exact optima
    # Each cached payload matches its own pipeline run bit for bit.
    direct = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
    assert milp.payload["X"] == sorted(direct.X)


def test_key_isolation_across_instances(rng, service):
    a, b = _queries(rng, 8, 2)
    ka = request_key(service.fp, "classify", a, {"k": 1})
    kb = request_key(service.fp, "classify", b, {"k": 1})
    assert ka != kb


# -- cache hit vs cold solve parity -------------------------------------


@pytest.mark.parametrize(
    "method,params",
    [
        ("classify", {"k": 3}),
        ("margin", {"k": 3}),
        ("radii", {"k": 3}),
        ("minimal_sr", {"k": 1}),
        ("minimum_sr", {"k": 1, "solver": "milp"}),
        ("minimum_sr", {"k": 1, "solver": "sat"}),
        ("counterfactual", {"k": 1, "solver": "hamming-sat"}),
        ("counterfactual", {"k": 1, "solver": "hamming-brute"}),
    ],
)
def test_cache_hit_is_bit_identical_to_cold_solve(rng, data, method, params):
    x = rng.integers(0, 2, size=8).astype(float)
    warm = ExplanationService()
    fp = warm.add_dataset(data)
    cold_response = warm.submit(fp, method, x, **params)
    hit_response = warm.submit(fp, method, x, **params)
    assert not cold_response.cached and hit_response.cached
    assert hit_response.payload == cold_response.payload
    # A completely fresh service re-derives the same payload from scratch.
    fresh = ExplanationService()
    assert fresh.submit(fresh.add_dataset(data), method, x, **params).payload \
        == cold_response.payload


def test_cache_hit_parity_on_prop1_tie():
    # x is Hamming-equidistant from the positive and the negative point:
    # r+ == r- and the optimistic semantics classify 1 (Proposition 1).
    data = Dataset([[0, 1]], [[1, 0]], discrete=True)
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = [0.0, 0.0]
    cold = service.submit(fp, "classify", x, k=1)
    hit = service.submit(fp, "classify", x, k=1)
    assert cold.payload == hit.payload == {"label": 1}
    radii = service.submit(fp, "radii", x, k=1).payload
    assert radii["r_pos"] == radii["r_neg"] == 1.0
    assert service.submit(fp, "margin", x, k=1).payload == {"margin": 0.0}
    assert service.submit(fp, "margin", x, k=1).cached


def test_portfolio_provenance_cached_with_answer(rng, data):
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    cold = service.submit(fp, "minimum_sr", x, k=1, solver="portfolio")
    hit = service.submit(fp, "minimum_sr", x, k=1, solver="portfolio")
    assert hit.cached and hit.payload == cold.payload
    prov = cold.payload["provenance"]
    assert prov["winner"] == cold.payload["method"]
    assert prov["attempts"][0]["status"] in ("exact", "timeout", "unsupported")
    # The deterministic part matches the raced pipeline's own answer size.
    direct = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
    assert cold.payload["size"] == direct.size


def test_counterfactual_payload_matches_pipeline(rng, data):
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    served = service.submit(fp, "counterfactual", x, k=1, solver="hamming-sat")
    direct = closest_counterfactual(data, 1, "hamming", x, method="hamming-sat")
    assert served.payload["distance"] == direct.distance
    assert served.payload["label_from"] == direct.label_from
    assert served.payload["found"] == direct.found


# -- disk persistence ---------------------------------------------------


def test_disk_persistence_survives_restart(rng, data, tmp_path):
    x = rng.integers(0, 2, size=8).astype(float)
    first = ExplanationService(cache_dir=tmp_path)
    fp = first.add_dataset(data)
    cold = first.submit(fp, "minimum_sr", x, k=1, solver="milp")
    assert not cold.cached
    # A new process (fresh service, same directory) starts warm.
    second = ExplanationService(cache_dir=tmp_path)
    second.add_dataset(data)
    warm = second.submit(fp, "minimum_sr", x, k=1, solver="milp")
    assert warm.cached
    assert warm.payload == cold.payload
    assert second.cache.stats()["disk_hits"] == 1


def test_disk_invalidation_removes_files(rng, data, tmp_path):
    service = ExplanationService(cache_dir=tmp_path)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(fp, "classify", x, k=3)
    assert list(tmp_path.glob("*.pkl"))
    service.remove_dataset(fp)
    assert not list(tmp_path.glob("*.pkl"))
    # A fresh service over the same directory finds nothing to reuse.
    fresh = ExplanationService(cache_dir=tmp_path)
    fresh.add_dataset(data)
    assert not fresh.submit(fp, "classify", x, k=3).cached


def test_result_cache_eviction_keeps_disk_copy(tmp_path):
    cache = ResultCache(maxsize=1, cache_dir=tmp_path)
    cache.put(b"fp1|a", {"v": 1})
    cache.put(b"fp1|b", {"v": 2})  # evicts a from memory, not from disk
    assert len(cache) == 1
    found, payload = cache.get(b"fp1|a")
    assert found and payload == {"v": 1}
    assert cache.stats()["disk_hits"] == 1


def test_cached_payloads_are_copies(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    first = service.submit(service.fp, "classify", x, k=3)
    first.payload["label"] = 999  # a caller mutating its response...
    again = service.submit(service.fp, "classify", x, k=3)
    assert again.payload["label"] != 999  # ...cannot poison the cache


# -- batching -----------------------------------------------------------


def test_submit_many_matches_sequential(rng, service):
    queries = _queries(rng, 8, 10)
    batched = service.submit_many(
        [(service.fp, "classify", x, {"k": 3}) for x in queries]
    )
    fresh = ExplanationService()
    fp = fresh.add_dataset(service.dataset(service.fp))
    sequential = [fresh.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in batched] == [r.payload for r in sequential]
    assert service.stats()["largest_batch"] == 10
    assert fresh.stats()["largest_batch"] == 1


def test_submit_many_mixed_methods_and_duplicates(rng, service):
    x, y = _queries(rng, 8, 2)
    responses = service.submit_many(
        [
            (service.fp, "classify", x, {"k": 3}),
            (service.fp, "margin", x, {"k": 3}),
            (service.fp, "classify", x, {"k": 3}),  # duplicate: solved once
            (service.fp, "classify", y, {"k": 3}),
        ]
    )
    assert responses[0].payload == responses[2].payload
    stats = service.stats()
    assert stats["requests"] == 4
    assert stats["batched_requests"] == 3  # duplicate deduplicated pre-solve
    label = responses[0].payload["label"]
    margin = responses[1].payload["margin"]
    assert (margin >= 0) == (label == 1)


def test_submit_many_respects_max_batch(rng, data):
    service = ExplanationService(max_batch=4, cache_size=0)
    fp = service.add_dataset(data)
    queries = _queries(rng, 8, 10)
    responses = service.submit_many([(fp, "classify", x, {"k": 3}) for x in queries])
    direct = [service.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in responses] == [r.payload for r in direct]


def test_in_band_error_is_not_cached(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    # The MILP Minimum-SR pipeline covers the discrete k=1 cell only.
    response = service.submit(service.fp, "minimum_sr", x, k=3, solver="milp")
    assert not response.ok
    assert response.payload["error_type"] == "UnsupportedSettingError"
    assert len(service.cache) == 0
    assert not service.submit(service.fp, "minimum_sr", x, k=3, solver="milp").cached


def test_make_request_validation(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    with pytest.raises(ValidationError, match="unknown method"):
        service.make_request(service.fp, "nope", x)
    with pytest.raises(ValidationError, match="dimension"):
        service.make_request(service.fp, "classify", [1.0, 0.0])
    with pytest.raises(ValidationError, match="unknown params"):
        service.make_request(service.fp, "classify", x, nope=1)
    with pytest.raises(ValidationError, match="fingerprint"):
        service.make_request("beef" * 16, "classify", x)


# -- asyncio micro-batching ---------------------------------------------


def test_asubmit_batches_concurrent_requests(rng, data):
    service = ExplanationService(cache_size=0, max_wait_s=0.01)
    fp = service.add_dataset(data)
    queries = _queries(rng, 8, 8)

    async def fan_out():
        return await asyncio.gather(
            *(service.asubmit(fp, "classify", x, k=3) for x in queries)
        )

    responses = asyncio.run(fan_out())
    direct = [service.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in responses] == [r.payload for r in direct]
    assert service.stats()["largest_batch"] == 8


def test_asubmit_straggler_during_flush_is_drained(rng, data, monkeypatch):
    # A request arriving while a flush batch is mid-solve (the window
    # where the flush task exists but is not done) must be picked up by
    # the flush loop's next iteration, not stranded forever.
    service = ExplanationService(cache_size=0, max_wait_s=0.001)
    fp = service.add_dataset(data)
    a, b = _queries(rng, 8, 2)
    real = service.submit_requests

    def slow_submit(requests):
        time.sleep(0.08)  # hold the executor so the straggler queues behind it
        return real(requests)

    monkeypatch.setattr(service, "submit_requests", slow_submit)

    async def main():
        first = asyncio.ensure_future(service.asubmit(fp, "classify", a, k=3))
        await asyncio.sleep(0.03)  # flush task is now blocked in the executor
        second = asyncio.ensure_future(service.asubmit(fp, "classify", b, k=3))
        return await asyncio.wait_for(asyncio.gather(first, second), timeout=5)

    first, second = asyncio.run(main())
    assert first.payload["label"] in (0, 1)
    assert second.payload["label"] in (0, 1)


def test_asubmit_cache_hit_short_circuits(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)

    async def one():
        return await service.asubmit(service.fp, "classify", x, k=3)

    response = asyncio.run(one())
    assert response.cached and response.payload["label"] in (0, 1)


# -- HTTP endpoint ------------------------------------------------------


def _post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


@pytest.fixture
def server(service):
    """The service behind a live HTTP server on an ephemeral port."""
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()


def test_http_end_to_end(rng, data, server, service):
    url = f"http://127.0.0.1:{server.port}"
    with urllib.request.urlopen(url + "/healthz") as response:
        assert json.load(response)["status"] == "ok"
    x = rng.integers(0, 2, size=8).astype(float).tolist()
    single = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "classify",
        "instance": x, "params": {"k": 3},
    })
    assert single["result"]["label"] in (0, 1)
    assert single["cached"] is False
    again = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "classify",
        "instance": x, "params": {"k": 3},
    })
    assert again["cached"] is True
    assert again["result"] == single["result"]
    batch = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "margin",
        "instances": [x, x], "params": {"k": 3},
    })
    assert len(batch["results"]) == 2
    with urllib.request.urlopen(url + "/v1/stats") as response:
        stats = json.load(response)
    assert stats["requests"] >= 4 and stats["cache"]["hits"] >= 1


def test_http_register_and_delete_dataset(server):
    url = f"http://127.0.0.1:{server.port}"
    registered = _post(url + "/v1/datasets", {
        "positives": [[0, 1], [1, 1]], "negatives": [[0, 0]], "discrete": True,
    })
    fp = registered["fingerprint"]
    assert registered["dimension"] == 2
    answer = _post(url + "/v1/explain", {
        "fingerprint": fp, "method": "minimum_sr",
        "instance": [1, 1], "params": {"k": 1, "solver": "sat"},
    })
    assert answer["result"]["size"] >= 0
    request = urllib.request.Request(
        url + f"/v1/datasets/{fp}", method="DELETE"
    )
    with urllib.request.urlopen(request) as response:
        assert json.load(response)["invalidated"] == 1


def test_http_delete_rejects_malformed_fingerprint(rng, tmp_path):
    # A wildcard in the URL must not reach the disk cache's glob sweep.
    service = ExplanationService(cache_dir=tmp_path)
    fp = service.add_dataset(random_discrete_dataset(rng, 6, 8, 8))
    service.submit(fp, "classify", rng.integers(0, 2, size=6).astype(float), k=3)
    persisted = list(tmp_path.glob("*.pkl"))
    assert persisted
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/v1/datasets/"
        for bad in ("*", "..%2F..", "a" * 63, "G" * 64):
            request = urllib.request.Request(url + bad, method="DELETE")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400
        assert list(tmp_path.glob("*.pkl")) == persisted  # nothing deleted
        request = urllib.request.Request(url + fp, method="DELETE")
        with urllib.request.urlopen(request) as response:
            assert json.load(response)["invalidated"] >= 1
        assert not list(tmp_path.glob("*.pkl"))
    finally:
        server.shutdown()


def test_invalidate_ignores_glob_metacharacters(tmp_path):
    cache = ResultCache(maxsize=4, cache_dir=tmp_path)
    cache.put(b"aabbccddeeff0011|x", {"v": 1})
    assert cache.invalidate("*") == 0
    assert cache.invalidate("[a-f]" * 8) == 0
    assert list(tmp_path.glob("*.pkl"))
    assert cache.invalidate("aabbccddeeff0011") == 2  # memory + disk entry
    assert not list(tmp_path.glob("*.pkl"))


def test_http_error_codes(server, service):
    url = f"http://127.0.0.1:{server.port}"
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + "/v1/explain", {
            "fingerprint": service.fp, "method": "nope", "instance": [0] * 8,
        })
    assert err.value.code == 400
    body = json.load(err.value)
    assert "unknown method" in body["error"]["message"]
    assert body["error"]["type"] == "ValidationError"
    # One-release compat: the flat pre-v2 fields, flagged as deprecated.
    assert body["error_type"] == "ValidationError"
    assert "unknown method" in body["error_message"]
    assert err.value.headers["Deprecation"] is not None
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + "/v1/explain", {"fingerprint": service.fp, "method": "classify"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        with urllib.request.urlopen(url + "/nope"):
            pass
    assert err.value.code == 404


def test_http_concurrent_requests_micro_batch(rng, data):
    service = ExplanationService(cache_size=0, max_wait_s=0.02)
    fp = service.add_dataset(data)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/v1/explain"
        queries = _queries(rng, 8, 6)
        results = [None] * len(queries)

        def worker(i, x):
            results[i] = _post(url, {
                "fingerprint": fp, "method": "classify",
                "instance": x.tolist(), "params": {"k": 3},
            })

        threads = [
            threading.Thread(target=worker, args=(i, x))
            for i, x in enumerate(queries)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        direct = [service.submit(fp, "classify", x, k=3) for x in queries]
        assert [r["result"] for r in results] == [r.payload for r in direct]
        # Concurrent HTTP clients were grouped into shared engine calls.
        assert service.stats()["largest_batch"] >= 2
    finally:
        server.shutdown()


def test_jsonable_handles_nonfinite_and_numpy():
    payload = {
        "a": np.float64(np.inf),
        "b": float("-inf"),
        "c": float("nan"),
        "d": np.int64(3),
        "e": np.array([1.5, 2.5]),
        "f": (np.bool_(True), 0.5),
    }
    assert jsonable(payload) == {
        "a": "Infinity",
        "b": "-Infinity",
        "c": "NaN",
        "d": 3,
        "e": [1.5, 2.5],
        "f": [1, 0.5],
    }
    json.dumps(jsonable(payload))  # strict-JSON encodable


# -- bench + CLI wiring -------------------------------------------------


def test_serve_throughput_is_a_gated_headline():
    from repro.experiments import bench

    assert "serve_throughput" in bench.WORKLOADS
    assert "serve_throughput" in bench.GATED_HEADLINES


def test_cli_serve_parser():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--cache-size", "16", "--demo-size", "20"]
    )
    assert args.command == "serve"
    assert args.port == 0 and args.cache_size == 16 and args.demo_size == 20
    assert build_parser().epilog and "docs/" in build_parser().epilog


# -- streaming mutations and versioned fingerprints ---------------------


def _delete(url: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="DELETE",
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def test_versioned_fingerprint_helpers():
    from repro.serve import split_fingerprint, versioned_fingerprint

    assert split_fingerprint("ab12") == ("ab12", 0)
    assert split_fingerprint("ab12@v3") == ("ab12", 3)
    assert versioned_fingerprint("ab12", 0) == "ab12"
    assert versioned_fingerprint("ab12", 7) == "ab12@v7"
    for bad in ("ab12@", "ab12@v", "ab12@3", "ab12@v-1", "ab12@v1x", "a@v1@v2"):
        with pytest.raises(ValidationError):
            split_fingerprint(bad)


def test_result_cache_versioned_invalidation_is_scoped(tmp_path):
    from repro.serve import versioned_fingerprint

    cache = ResultCache(maxsize=16, cache_dir=tmp_path)
    base = "ab12cd34" * 8
    other = "ef56ab78" * 8
    cache.put(base.encode() + b"|x", {"v": 0})
    cache.put(versioned_fingerprint(base, 1).encode() + b"|x", {"v": 1})
    cache.put(versioned_fingerprint(base, 2).encode() + b"|x", {"v": 2})
    cache.put(other.encode() + b"|x", {"v": "other"})
    assert len(list(tmp_path.glob("*.pkl"))) == 4
    # Scoped: exactly the superseded version's entry goes (memory + disk).
    assert cache.invalidate(versioned_fingerprint(base, 1)) == 2
    assert cache.get(versioned_fingerprint(base, 2).encode() + b"|x")[0]
    assert cache.get(base.encode() + b"|x")[0]
    assert len(list(tmp_path.glob("*.pkl"))) == 3
    # Bare: every remaining version of the base goes, the other dataset stays.
    assert cache.invalidate(base) == 4
    assert not cache.get(base.encode() + b"|x")[0]
    assert cache.get(other.encode() + b"|x")[0]
    assert len(list(tmp_path.glob("*.pkl"))) == 1


def test_service_mutation_bumps_version_and_scopes_invalidation(rng, data):
    service = ExplanationService(cache_size=64)
    fp = service.add_dataset(data)
    other = service.add_dataset(random_discrete_dataset(rng, 8, 6, 6))
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(fp, "classify", x, k=3)
    service.submit(other, "classify", x, k=3)
    info = service.add_points(fp, [x], [1], multiplicities=[2])
    assert info["fingerprint"] == f"{fp}@v1" and info["version"] == 1
    assert info["invalidated"] == 1  # only the superseded version's entry
    # The untouched dataset still serves from cache; the mutated one re-solves.
    assert service.submit(other, "classify", x, k=3).cached
    fresh = service.submit(fp, "classify", x, k=3)
    assert not fresh.cached
    assert fresh.request.fingerprint == f"{fp}@v1"
    from repro.knn import QueryEngine

    assert fresh.payload["label"] == QueryEngine(
        service.dataset(fp), "hamming"
    ).classify(x, 3)
    # remove_points round-trips the dataset contents (version keeps moving).
    info = service.remove_points(fp, [x], [1], multiplicities=[2])
    assert info["version"] == 2
    assert dataset_fingerprint(service.dataset(fp)) == fp


def test_service_mutation_updates_every_metric_engine(rng, data):
    service = ExplanationService(cache_size=16)
    fp = service.add_dataset(data)
    hamming = service.engine(fp, "hamming")
    l2 = service.engine(fp, "l2")
    x = rng.integers(0, 2, size=8).astype(float)
    service.add_points(fp, [x, x], [1, 0])
    from repro.knn import QueryEngine

    for engine, metric in ((hamming, "hamming"), (l2, "l2")):
        assert engine.version == 1
        fresh = QueryEngine(service.dataset(fp), metric)
        queries = rng.integers(0, 2, size=(6, 8)).astype(float)
        np.testing.assert_array_equal(
            engine.classify_batch(queries, 3), fresh.classify_batch(queries, 3)
        )


def test_service_mutation_is_all_or_nothing_across_engines(rng):
    """A batch one engine must refuse leaves *every* engine untouched.

    With an explicit bitpack service backend, a non-binary insert is
    pre-validated against all warm engines before any is mutated — the
    refusal must not leave the dataset, the version, or any engine in a
    half-mutated state.
    """
    data = Dataset(
        rng.integers(0, 2, size=(8, 6)).astype(float),
        rng.integers(0, 2, size=(8, 6)).astype(float),
    )  # binary by chance, NOT discrete: with_added accepts general rows
    service = ExplanationService(cache_size=16, backend="bitpack")
    fp = service.add_dataset(data)
    engine = service.engine(fp, "hamming")
    with pytest.raises(ValidationError, match="bitpack"):
        service.add_points(fp, [[0.5] * 6], [1])
    assert engine.version == 0
    assert service.stats()["mutations"] == 0
    assert dataset_fingerprint(service.dataset(fp)) == fp


def test_superseded_version_pin_is_rejected(rng, data):
    service = ExplanationService(cache_size=16)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    service.add_points(fp, [x], [1])
    assert service.submit(f"{fp}@v1", "classify", x, k=3).ok  # current pin
    service.add_points(fp, [x], [0])
    with pytest.raises(ValidationError, match="superseded"):
        service.make_request(f"{fp}@v1", "classify", x, k=3)
    with pytest.raises(ValidationError):
        service.make_request(f"{fp}@v9", "classify", x, k=3)


def test_in_flight_batch_repins_to_current_version(rng, data):
    """Requests built before a mutation answer against the mutated data."""
    service = ExplanationService(cache_size=64)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    pinned = service.make_request(fp, "classify", x, k=1)
    assert pinned.fingerprint == fp  # pinned v0
    service.add_points(fp, [x, x, x], [1, 1, 1])  # flips x's 1-NN to positive
    response = service.submit_requests([pinned])[0]
    assert response.payload["label"] == 1  # the *mutated* answer
    # ... and it was cached under the current version, not the dead one.
    assert service.submit(fp, "classify", x, k=1).cached


def test_remove_dataset_with_superseded_version_keeps_dataset(rng, data):
    service = ExplanationService(cache_size=16)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(fp, "classify", x, k=3)
    service.add_points(fp, [x], [1])
    # Sweeping a dead version's cache keeps the live dataset serving.
    service.remove_dataset(f"{fp}")  # bare removes everything
    with pytest.raises(ValidationError):
        service.dataset(fp)
    fp = service.add_dataset(data)
    service.add_points(fp, [x], [1])
    assert service.remove_dataset(f"{fp}@v0") == 0  # stale version, no entries
    assert service.dataset(fp) is not None
    service.remove_dataset(f"{fp}@v1")  # current version: full removal
    with pytest.raises(ValidationError):
        service.dataset(fp)


def test_http_streaming_mutation_endpoints(rng, data, server, service):
    url = f"http://127.0.0.1:{server.port}"
    x = rng.integers(0, 2, size=8).astype(float)
    before = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "radii",
        "instance": x.tolist(), "params": {"k": 3},
    })
    added = _post(url + f"/v1/datasets/{service.fp}/points", {
        "points": [x.tolist()], "labels": [1], "multiplicities": [2],
    })
    assert added["fingerprint"] == f"{service.fp}@v1"
    assert added["version"] == 1
    assert added["n_positive"] == data.n_positive + 2
    after = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "radii",
        "instance": x.tolist(), "params": {"k": 3},
    })
    assert not after["cached"]
    assert after["result"]["r_pos"] == 0.0  # two copies of x are positives now
    removed = _delete(url + f"/v1/datasets/{service.fp}/points", {
        "points": [x.tolist()], "labels": [1], "multiplicities": [2],
    })
    assert removed["version"] == 2 and removed["n_positive"] == data.n_positive
    restored = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "radii",
        "instance": x.tolist(), "params": {"k": 3},
    })
    assert restored["result"] == before["result"]
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + "/v1/datasets/zz/points", {"points": [[0] * 8], "labels": [1]})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + f"/v1/datasets/{service.fp}/points", {"points": [[0] * 8]})
    assert err.value.code == 400  # missing labels
    with pytest.raises(urllib.error.HTTPError) as err:
        _delete(url + f"/v1/datasets/{service.fp}/points", {
            "points": [[0.0] * 8], "labels": [1], "multiplicities": [99],
        })
    assert err.value.code in (400, 422)  # invalid removal is rejected in full


def test_http_delete_accepts_versioned_fingerprint(rng, tmp_path):
    service = ExplanationService(cache_dir=tmp_path)
    fp = service.add_dataset(random_discrete_dataset(rng, 6, 8, 8))
    x = rng.integers(0, 2, size=6).astype(float)
    service.submit(fp, "classify", x, k=3)
    service.add_points(fp, [x], [1])
    service.submit(fp, "classify", x, k=3)
    assert any("@v1" in p.name for p in tmp_path.glob("*.pkl"))
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/v1/datasets/"
        for bad in (fp + "@v", fp + "@vx", fp + "@1", fp + "@v*"):
            request = urllib.request.Request(url + bad, method="DELETE")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400
        out = _delete(url + fp + "@v1")  # current version: drops everything
        assert out["invalidated"] >= 1
        assert not list(tmp_path.glob("*.pkl"))
    finally:
        server.shutdown()


def test_concurrent_mutation_and_query_stress(rng):
    """Mixed mutate/query traffic: no stale hits, no torn batches.

    A mutator alternately plants and removes a block of sentinel
    positives (flipping the sentinel query's 1-NN label) while hammer
    threads pour classify traffic over the same HTTP server.  After
    every mutation response, the very next sentinel query must reflect
    the new version (its label flips, never served from a stale cache),
    and every concurrent answer must be a well-formed label — a torn
    batch (half-mutated engine) would surface as an exception or a
    wrong-length response.
    """
    n = 8
    data = random_discrete_dataset(rng, n, 10, 10)
    # A sentinel absent from the data: its 1-NN label is controlled
    # purely by the copies the mutator plants.
    rows = {row.tobytes() for row in np.vstack([data.positives, data.negatives])}
    x = None
    while x is None or x.tobytes() in rows:
        x = rng.integers(0, 2, size=n).astype(float)
    service = ExplanationService(cache_size=256)
    fp = service.add_dataset(data)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.port}"
    stop = threading.Event()
    failures: list[str] = []

    def hammer(worker: int) -> None:
        local = np.random.default_rng(worker)
        while not stop.is_set():
            batch = local.integers(0, 2, size=(3, n)).astype(float)
            try:
                out = _post(url + "/v1/explain", {
                    "fingerprint": fp, "method": "classify",
                    "instances": batch.tolist(), "params": {"k": 1},
                })
                results = out["results"]
                if len(results) != 3 or any(
                    r["result"].get("label") not in (0, 1) for r in results
                ):
                    failures.append(f"malformed batch answer: {out}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"worker {worker}: {exc}")

    workers = [threading.Thread(target=hammer, args=(w,)) for w in range(3)]
    for worker in workers:
        worker.start()
    try:
        copies, labels = [x] * 3, [1, 1, 1]
        for round_no in range(8):
            planted = round_no % 2 == 0
            if planted:
                info = _post(url + f"/v1/datasets/{fp}/points", {
                    "points": [p.tolist() for p in copies], "labels": labels,
                })
            else:
                info = _delete(url + f"/v1/datasets/{fp}/points", {
                    "points": [p.tolist() for p in copies], "labels": labels,
                })
            assert info["version"] == round_no + 1
            # The first sentinel query after the mutation response must
            # see the new version: planted -> its own copies win (1).
            expected = 1 if planted else QueryEngine(data, "hamming").classify(x, 1)
            answer = _post(url + "/v1/explain", {
                "fingerprint": fp, "method": "classify",
                "instance": x.tolist(), "params": {"k": 1},
            })
            assert answer["result"]["label"] == expected
            assert not answer["cached"]  # the version bump voided old entries
            again = _post(url + "/v1/explain", {
                "fingerprint": fp, "method": "classify",
                "instance": x.tolist(), "params": {"k": 1},
            })
            assert again["cached"] and again["result"]["label"] == expected
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=10)
        server.shutdown()
    assert not failures, failures[:3]
    stats = service.stats()
    assert stats["mutations"] == 8
    assert stats["versions"][fp[:16]] == 8
    assert stats["requests"] >= 16  # at least the sentinel checks landed
    cache_stats = stats["cache"]
    assert cache_stats["hits"] >= 8  # every 'again' probe hit
    assert cache_stats["size"] <= cache_stats["maxsize"]
    assert dataset_fingerprint(service.dataset(fp)) == fp  # fully unplanted


def test_portfolio_stress_under_mutation_with_counter_consistency(rng):
    """Portfolio racing + warm pool under live mutation churn.

    Hammer threads pour ``solver="portfolio"`` MSR and counterfactual
    traffic over a live HTTP server (parallel racing on, result cache
    off so every request genuinely races and leases pooled solvers)
    while a mutator plants and removes a block of points, superseding
    the versions the pooled solvers were keyed under.  Zero malformed
    answers are tolerated, and the pool / race counters the run
    produced must agree across ``service.stats()``, ``GET /v2/stats``
    and the rendered ``/metrics`` exposition.
    """
    n = 6
    data = random_discrete_dataset(rng, n, 8, 8)
    # Racer processes fork before the server/hammer threads start.
    service = ExplanationService(cache_size=0, parallel_portfolio=True, race_workers=2)
    fp = service.add_dataset(data)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.port}"
    stop = threading.Event()
    failures: list[str] = []

    def hammer(worker: int) -> None:
        local = np.random.default_rng(worker)
        method = ("minimum_sr", "counterfactual")[worker % 2]
        while not stop.is_set():
            x = local.integers(0, 2, size=n).astype(float).tolist()
            try:
                out = _post(url + "/v1/explain", {
                    "fingerprint": fp, "method": method, "instance": x,
                    "params": {"k": 1, "metric": "hamming", "solver": "portfolio"},
                })
                result = out["result"]
                if method == "minimum_sr":
                    ok = (
                        isinstance(result.get("X"), list)
                        and result.get("size") == len(result["X"])
                        and all(0 <= int(i) < n for i in result["X"])
                    )
                else:
                    y = result.get("y")
                    ok = y is None or (
                        len(y) == n and float(result["distance"]) >= 0
                    )
                if not ok:
                    failures.append(f"malformed portfolio answer: {out}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"worker {worker}: {exc}")

    workers = [threading.Thread(target=hammer, args=(w,)) for w in range(3)]
    for worker in workers:
        worker.start()
    try:
        block = rng.integers(0, 2, size=(2, n)).astype(float)
        for round_no in range(4):
            planted = round_no % 2 == 0
            if planted:
                info = _post(url + f"/v1/datasets/{fp}/points", {
                    "points": block.tolist(), "labels": [1, 0],
                })
            else:
                info = _delete(url + f"/v1/datasets/{fp}/points", {
                    "points": block.tolist(), "labels": [1, 0],
                })
            assert info["version"] == round_no + 1
            time.sleep(0.3)  # let portfolio traffic land on this version
        stop.set()
        for worker in workers:
            worker.join(timeout=30)
        # Counters are quiescent now: compare the three surfaces.
        with urllib.request.urlopen(url + "/v2/stats") as response:
            v2 = json.load(response)
        with urllib.request.urlopen(url + "/metrics") as response:
            metrics = response.read().decode()
        # Snapshot before shutdown: closing the server closes the
        # service, which tears the race workers down.
        stats = service.stats()
        pooled = set(service.solver_pool.fingerprints())
        pool_keys = len(service.solver_pool.keys())
        current = set(service.fingerprints())
    finally:
        stop.set()
        server.shutdown()
    assert not failures, failures[:3]
    portfolio, pool = stats["portfolio"], stats["solver_pool"]
    assert v2["portfolio"] == portfolio
    assert v2["solver_pool"] == pool
    assert portfolio["races"] > 0
    assert portfolio["races"] == portfolio["parallel"] + portfolio["sequential"]
    assert sum(portfolio["attempts"].values()) >= portfolio["races"]
    assert pool["hits"] + pool["misses"] > 0
    assert pool["entries"] == pool_keys
    # Mutations superseded pooled versions: whatever remains pooled
    # belongs to the dataset's current version only.
    assert pooled <= current
    # The rendered exposition must agree with the JSON counters.
    pool_hit = f'repro_solver_pool_requests_total{{outcome="hit"}} {pool["hits"]}'
    pool_miss = f'repro_solver_pool_requests_total{{outcome="miss"}} {pool["misses"]}'
    races_par = f'repro_portfolio_races_total{{mode="parallel"}} {portfolio["parallel"]}'
    assert pool_hit in metrics and pool_miss in metrics
    assert races_par in metrics
    race_pool = portfolio["race_pool"]
    assert f'repro_race_events_total{{event="races"}} {race_pool["races"]}' in metrics
    service.close()  # idempotent: the server shutdown already closed it
