"""Tests for the :mod:`repro.serve` layer: cache semantics, batching, HTTP.

The cache tests pin the contract the ISSUE asks for: LRU eviction
order, dataset-fingerprint invalidation, cross-method key isolation,
and bit-identical answers on a cache hit versus a cold solve —
including the Proposition 1 tie case (``r+ == r-`` classifies 1).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import (
    Dataset,
    ExplanationService,
    ValidationError,
    closest_counterfactual,
    dataset_fingerprint,
    minimum_sufficient_reason,
    serve_http,
)
from repro.serve import BATCH_METHODS, ResultCache, request_key
from repro.serve.http import jsonable

from .helpers import random_discrete_dataset


@pytest.fixture
def data(rng):
    """A small random discrete dataset shared across the serve tests."""
    return random_discrete_dataset(rng, 8, 12, 12)


@pytest.fixture
def service(data):
    """A service with *data* registered; fingerprint on ``service.fp``."""
    service = ExplanationService(cache_size=64)
    service.fp = service.add_dataset(data)
    return service


def _queries(rng, n, count):
    """Distinct random boolean query vectors."""
    seen = set()
    out = []
    while len(out) < count:
        x = rng.integers(0, 2, size=n).astype(float)
        if x.tobytes() not in seen:
            seen.add(x.tobytes())
            out.append(x)
    return out


# -- fingerprints -------------------------------------------------------


def test_fingerprint_is_content_addressed():
    a = Dataset([[0, 1], [1, 0]], [[1, 1]], discrete=True)
    b = Dataset([[0, 1], [1, 0]], [[1, 1]], discrete=True)
    c = Dataset([[0, 1], [1, 0]], [[0, 0]], discrete=True)
    assert dataset_fingerprint(a) == dataset_fingerprint(b)
    assert dataset_fingerprint(a) != dataset_fingerprint(c)


def test_fingerprint_covers_multiplicities_and_flag():
    plain = Dataset([[0, 1]], [[1, 1]])
    weighted = Dataset([[0, 1]], [[1, 1]], positive_multiplicities=[3])
    discrete = Dataset([[0, 1]], [[1, 1]], discrete=True)
    prints = {dataset_fingerprint(d) for d in (plain, weighted, discrete)}
    assert len(prints) == 3


def test_add_dataset_is_idempotent(service, data):
    again = Dataset(data.positives, data.negatives, discrete=data.discrete)
    assert service.add_dataset(again) == service.fp
    assert service.stats()["datasets"] == 1


# -- LRU semantics ------------------------------------------------------


def test_lru_eviction_order(rng, service):
    service.cache.maxsize = 3
    queries = _queries(rng, 8, 4)
    keys = []
    for x in queries[:3]:
        keys.append(service.submit(service.fp, "classify", x, k=3).request.key)
    assert service.cache.keys() == keys  # oldest first
    # Touching the oldest entry refreshes its recency...
    assert service.submit(service.fp, "classify", queries[0], k=3).cached
    assert service.cache.keys() == [keys[1], keys[2], keys[0]]
    # ...so the next insertion evicts keys[1], not keys[0].
    k3 = service.submit(service.fp, "classify", queries[3], k=3).request.key
    assert service.cache.keys() == [keys[2], keys[0], k3]
    assert service.cache.stats()["evictions"] == 1
    assert not service.submit(service.fp, "classify", queries[1], k=3).cached


def test_cache_size_zero_disables_caching(rng, data):
    service = ExplanationService(cache_size=0)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    assert not service.submit(fp, "classify", x, k=3).cached
    assert not service.submit(fp, "classify", x, k=3).cached
    assert len(service.cache) == 0


# -- invalidation -------------------------------------------------------


def test_fingerprint_invalidation_is_scoped(rng, service, data):
    other = random_discrete_dataset(rng, 8, 10, 10)
    fp2 = service.add_dataset(other)
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)
    service.submit(fp2, "classify", x, k=3)
    removed = service.invalidate(service.fp)
    assert removed == 1
    # The invalidated dataset's entry re-solves; the other still hits.
    assert not service.submit(service.fp, "classify", x, k=3).cached
    assert service.submit(fp2, "classify", x, k=3).cached


def test_remove_dataset_drops_engines_and_cache(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)
    assert service.stats()["engines"] == 1
    assert service.remove_dataset(service.fp) == 1
    stats = service.stats()
    assert stats["datasets"] == 0 and stats["engines"] == 0
    with pytest.raises(ValidationError):
        service.submit(service.fp, "classify", x, k=3)


# -- key isolation ------------------------------------------------------


def test_cross_method_key_isolation(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    payloads = {}
    for method in BATCH_METHODS:
        payloads[method] = service.submit(service.fp, method, x, k=3).payload
    assert len(service.cache) == 3  # one entry per method, no collisions
    assert set(payloads["classify"]) == {"label"}
    assert set(payloads["margin"]) == {"margin"}
    assert set(payloads["radii"]) == {"r_pos", "r_neg"}
    # Params are part of the key too: a different k is a different entry.
    service.submit(service.fp, "classify", x, k=1)
    assert len(service.cache) == 4


def test_solver_choice_is_part_of_the_key(rng, service, data):
    x = rng.integers(0, 2, size=8).astype(float)
    milp = service.submit(service.fp, "minimum_sr", x, k=1, solver="milp")
    sat = service.submit(service.fp, "minimum_sr", x, k=1, solver="sat")
    assert milp.request.key != sat.request.key
    assert milp.payload["size"] == sat.payload["size"]  # both exact optima
    # Each cached payload matches its own pipeline run bit for bit.
    direct = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
    assert milp.payload["X"] == sorted(direct.X)


def test_key_isolation_across_instances(rng, service):
    a, b = _queries(rng, 8, 2)
    ka = request_key(service.fp, "classify", a, {"k": 1})
    kb = request_key(service.fp, "classify", b, {"k": 1})
    assert ka != kb


# -- cache hit vs cold solve parity -------------------------------------


@pytest.mark.parametrize(
    "method,params",
    [
        ("classify", {"k": 3}),
        ("margin", {"k": 3}),
        ("radii", {"k": 3}),
        ("minimal_sr", {"k": 1}),
        ("minimum_sr", {"k": 1, "solver": "milp"}),
        ("minimum_sr", {"k": 1, "solver": "sat"}),
        ("counterfactual", {"k": 1, "solver": "hamming-sat"}),
        ("counterfactual", {"k": 1, "solver": "hamming-brute"}),
    ],
)
def test_cache_hit_is_bit_identical_to_cold_solve(rng, data, method, params):
    x = rng.integers(0, 2, size=8).astype(float)
    warm = ExplanationService()
    fp = warm.add_dataset(data)
    cold_response = warm.submit(fp, method, x, **params)
    hit_response = warm.submit(fp, method, x, **params)
    assert not cold_response.cached and hit_response.cached
    assert hit_response.payload == cold_response.payload
    # A completely fresh service re-derives the same payload from scratch.
    fresh = ExplanationService()
    assert fresh.submit(fresh.add_dataset(data), method, x, **params).payload \
        == cold_response.payload


def test_cache_hit_parity_on_prop1_tie():
    # x is Hamming-equidistant from the positive and the negative point:
    # r+ == r- and the optimistic semantics classify 1 (Proposition 1).
    data = Dataset([[0, 1]], [[1, 0]], discrete=True)
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = [0.0, 0.0]
    cold = service.submit(fp, "classify", x, k=1)
    hit = service.submit(fp, "classify", x, k=1)
    assert cold.payload == hit.payload == {"label": 1}
    radii = service.submit(fp, "radii", x, k=1).payload
    assert radii["r_pos"] == radii["r_neg"] == 1.0
    assert service.submit(fp, "margin", x, k=1).payload == {"margin": 0.0}
    assert service.submit(fp, "margin", x, k=1).cached


def test_portfolio_provenance_cached_with_answer(rng, data):
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    cold = service.submit(fp, "minimum_sr", x, k=1, solver="portfolio")
    hit = service.submit(fp, "minimum_sr", x, k=1, solver="portfolio")
    assert hit.cached and hit.payload == cold.payload
    prov = cold.payload["provenance"]
    assert prov["winner"] == cold.payload["method"]
    assert prov["attempts"][0]["status"] in ("exact", "timeout", "unsupported")
    # The deterministic part matches the raced pipeline's own answer size.
    direct = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
    assert cold.payload["size"] == direct.size


def test_counterfactual_payload_matches_pipeline(rng, data):
    service = ExplanationService()
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    served = service.submit(fp, "counterfactual", x, k=1, solver="hamming-sat")
    direct = closest_counterfactual(data, 1, "hamming", x, method="hamming-sat")
    assert served.payload["distance"] == direct.distance
    assert served.payload["label_from"] == direct.label_from
    assert served.payload["found"] == direct.found


# -- disk persistence ---------------------------------------------------


def test_disk_persistence_survives_restart(rng, data, tmp_path):
    x = rng.integers(0, 2, size=8).astype(float)
    first = ExplanationService(cache_dir=tmp_path)
    fp = first.add_dataset(data)
    cold = first.submit(fp, "minimum_sr", x, k=1, solver="milp")
    assert not cold.cached
    # A new process (fresh service, same directory) starts warm.
    second = ExplanationService(cache_dir=tmp_path)
    second.add_dataset(data)
    warm = second.submit(fp, "minimum_sr", x, k=1, solver="milp")
    assert warm.cached
    assert warm.payload == cold.payload
    assert second.cache.stats()["disk_hits"] == 1


def test_disk_invalidation_removes_files(rng, data, tmp_path):
    service = ExplanationService(cache_dir=tmp_path)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(fp, "classify", x, k=3)
    assert list(tmp_path.glob("*.pkl"))
    service.remove_dataset(fp)
    assert not list(tmp_path.glob("*.pkl"))
    # A fresh service over the same directory finds nothing to reuse.
    fresh = ExplanationService(cache_dir=tmp_path)
    fresh.add_dataset(data)
    assert not fresh.submit(fp, "classify", x, k=3).cached


def test_result_cache_eviction_keeps_disk_copy(tmp_path):
    cache = ResultCache(maxsize=1, cache_dir=tmp_path)
    cache.put(b"fp1|a", {"v": 1})
    cache.put(b"fp1|b", {"v": 2})  # evicts a from memory, not from disk
    assert len(cache) == 1
    found, payload = cache.get(b"fp1|a")
    assert found and payload == {"v": 1}
    assert cache.stats()["disk_hits"] == 1


def test_cached_payloads_are_copies(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    first = service.submit(service.fp, "classify", x, k=3)
    first.payload["label"] = 999  # a caller mutating its response...
    again = service.submit(service.fp, "classify", x, k=3)
    assert again.payload["label"] != 999  # ...cannot poison the cache


# -- batching -----------------------------------------------------------


def test_submit_many_matches_sequential(rng, service):
    queries = _queries(rng, 8, 10)
    batched = service.submit_many(
        [(service.fp, "classify", x, {"k": 3}) for x in queries]
    )
    fresh = ExplanationService()
    fp = fresh.add_dataset(service.dataset(service.fp))
    sequential = [fresh.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in batched] == [r.payload for r in sequential]
    assert service.stats()["largest_batch"] == 10
    assert fresh.stats()["largest_batch"] == 1


def test_submit_many_mixed_methods_and_duplicates(rng, service):
    x, y = _queries(rng, 8, 2)
    responses = service.submit_many(
        [
            (service.fp, "classify", x, {"k": 3}),
            (service.fp, "margin", x, {"k": 3}),
            (service.fp, "classify", x, {"k": 3}),  # duplicate: solved once
            (service.fp, "classify", y, {"k": 3}),
        ]
    )
    assert responses[0].payload == responses[2].payload
    stats = service.stats()
    assert stats["requests"] == 4
    assert stats["batched_requests"] == 3  # duplicate deduplicated pre-solve
    label = responses[0].payload["label"]
    margin = responses[1].payload["margin"]
    assert (margin >= 0) == (label == 1)


def test_submit_many_respects_max_batch(rng, data):
    service = ExplanationService(max_batch=4, cache_size=0)
    fp = service.add_dataset(data)
    queries = _queries(rng, 8, 10)
    responses = service.submit_many([(fp, "classify", x, {"k": 3}) for x in queries])
    direct = [service.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in responses] == [r.payload for r in direct]


def test_in_band_error_is_not_cached(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    # The MILP Minimum-SR pipeline covers the discrete k=1 cell only.
    response = service.submit(service.fp, "minimum_sr", x, k=3, solver="milp")
    assert not response.ok
    assert response.payload["error_type"] == "UnsupportedSettingError"
    assert len(service.cache) == 0
    assert not service.submit(service.fp, "minimum_sr", x, k=3, solver="milp").cached


def test_make_request_validation(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    with pytest.raises(ValidationError, match="unknown method"):
        service.make_request(service.fp, "nope", x)
    with pytest.raises(ValidationError, match="dimension"):
        service.make_request(service.fp, "classify", [1.0, 0.0])
    with pytest.raises(ValidationError, match="unknown params"):
        service.make_request(service.fp, "classify", x, nope=1)
    with pytest.raises(ValidationError, match="fingerprint"):
        service.make_request("beef" * 16, "classify", x)


# -- asyncio micro-batching ---------------------------------------------


def test_asubmit_batches_concurrent_requests(rng, data):
    service = ExplanationService(cache_size=0, max_wait_s=0.01)
    fp = service.add_dataset(data)
    queries = _queries(rng, 8, 8)

    async def fan_out():
        return await asyncio.gather(
            *(service.asubmit(fp, "classify", x, k=3) for x in queries)
        )

    responses = asyncio.run(fan_out())
    direct = [service.submit(fp, "classify", x, k=3) for x in queries]
    assert [r.payload for r in responses] == [r.payload for r in direct]
    assert service.stats()["largest_batch"] == 8


def test_asubmit_straggler_during_flush_is_drained(rng, data, monkeypatch):
    # A request arriving while a flush batch is mid-solve (the window
    # where the flush task exists but is not done) must be picked up by
    # the flush loop's next iteration, not stranded forever.
    service = ExplanationService(cache_size=0, max_wait_s=0.001)
    fp = service.add_dataset(data)
    a, b = _queries(rng, 8, 2)
    real = service.submit_requests

    def slow_submit(requests):
        time.sleep(0.08)  # hold the executor so the straggler queues behind it
        return real(requests)

    monkeypatch.setattr(service, "submit_requests", slow_submit)

    async def main():
        first = asyncio.ensure_future(service.asubmit(fp, "classify", a, k=3))
        await asyncio.sleep(0.03)  # flush task is now blocked in the executor
        second = asyncio.ensure_future(service.asubmit(fp, "classify", b, k=3))
        return await asyncio.wait_for(asyncio.gather(first, second), timeout=5)

    first, second = asyncio.run(main())
    assert first.payload["label"] in (0, 1)
    assert second.payload["label"] in (0, 1)


def test_asubmit_cache_hit_short_circuits(rng, service):
    x = rng.integers(0, 2, size=8).astype(float)
    service.submit(service.fp, "classify", x, k=3)

    async def one():
        return await service.asubmit(service.fp, "classify", x, k=3)

    response = asyncio.run(one())
    assert response.cached and response.payload["label"] in (0, 1)


# -- HTTP endpoint ------------------------------------------------------


def _post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


@pytest.fixture
def server(service):
    """The service behind a live HTTP server on an ephemeral port."""
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()


def test_http_end_to_end(rng, data, server, service):
    url = f"http://127.0.0.1:{server.port}"
    with urllib.request.urlopen(url + "/healthz") as response:
        assert json.load(response)["status"] == "ok"
    x = rng.integers(0, 2, size=8).astype(float).tolist()
    single = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "classify",
        "instance": x, "params": {"k": 3},
    })
    assert single["result"]["label"] in (0, 1)
    assert single["cached"] is False
    again = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "classify",
        "instance": x, "params": {"k": 3},
    })
    assert again["cached"] is True
    assert again["result"] == single["result"]
    batch = _post(url + "/v1/explain", {
        "fingerprint": service.fp, "method": "margin",
        "instances": [x, x], "params": {"k": 3},
    })
    assert len(batch["results"]) == 2
    with urllib.request.urlopen(url + "/v1/stats") as response:
        stats = json.load(response)
    assert stats["requests"] >= 4 and stats["cache"]["hits"] >= 1


def test_http_register_and_delete_dataset(server):
    url = f"http://127.0.0.1:{server.port}"
    registered = _post(url + "/v1/datasets", {
        "positives": [[0, 1], [1, 1]], "negatives": [[0, 0]], "discrete": True,
    })
    fp = registered["fingerprint"]
    assert registered["dimension"] == 2
    answer = _post(url + "/v1/explain", {
        "fingerprint": fp, "method": "minimum_sr",
        "instance": [1, 1], "params": {"k": 1, "solver": "sat"},
    })
    assert answer["result"]["size"] >= 0
    request = urllib.request.Request(
        url + f"/v1/datasets/{fp}", method="DELETE"
    )
    with urllib.request.urlopen(request) as response:
        assert json.load(response)["invalidated"] == 1


def test_http_delete_rejects_malformed_fingerprint(rng, tmp_path):
    # A wildcard in the URL must not reach the disk cache's glob sweep.
    service = ExplanationService(cache_dir=tmp_path)
    fp = service.add_dataset(random_discrete_dataset(rng, 6, 8, 8))
    service.submit(fp, "classify", rng.integers(0, 2, size=6).astype(float), k=3)
    persisted = list(tmp_path.glob("*.pkl"))
    assert persisted
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/v1/datasets/"
        for bad in ("*", "..%2F..", "a" * 63, "G" * 64):
            request = urllib.request.Request(url + bad, method="DELETE")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400
        assert list(tmp_path.glob("*.pkl")) == persisted  # nothing deleted
        request = urllib.request.Request(url + fp, method="DELETE")
        with urllib.request.urlopen(request) as response:
            assert json.load(response)["invalidated"] >= 1
        assert not list(tmp_path.glob("*.pkl"))
    finally:
        server.shutdown()


def test_invalidate_ignores_glob_metacharacters(tmp_path):
    cache = ResultCache(maxsize=4, cache_dir=tmp_path)
    cache.put(b"aabbccddeeff0011|x", {"v": 1})
    assert cache.invalidate("*") == 0
    assert cache.invalidate("[a-f]" * 8) == 0
    assert list(tmp_path.glob("*.pkl"))
    assert cache.invalidate("aabbccddeeff0011") == 2  # memory + disk entry
    assert not list(tmp_path.glob("*.pkl"))


def test_http_error_codes(server, service):
    url = f"http://127.0.0.1:{server.port}"
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + "/v1/explain", {
            "fingerprint": service.fp, "method": "nope", "instance": [0] * 8,
        })
    assert err.value.code == 400
    assert "unknown method" in json.load(err.value)["error"]
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url + "/v1/explain", {"fingerprint": service.fp, "method": "classify"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        with urllib.request.urlopen(url + "/nope"):
            pass
    assert err.value.code == 404


def test_http_concurrent_requests_micro_batch(rng, data):
    service = ExplanationService(cache_size=0, max_wait_s=0.02)
    fp = service.add_dataset(data)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/v1/explain"
        queries = _queries(rng, 8, 6)
        results = [None] * len(queries)

        def worker(i, x):
            results[i] = _post(url, {
                "fingerprint": fp, "method": "classify",
                "instance": x.tolist(), "params": {"k": 3},
            })

        threads = [
            threading.Thread(target=worker, args=(i, x))
            for i, x in enumerate(queries)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        direct = [service.submit(fp, "classify", x, k=3) for x in queries]
        assert [r["result"] for r in results] == [r.payload for r in direct]
        # Concurrent HTTP clients were grouped into shared engine calls.
        assert service.stats()["largest_batch"] >= 2
    finally:
        server.shutdown()


def test_jsonable_handles_nonfinite_and_numpy():
    payload = {
        "a": np.float64(np.inf),
        "b": float("-inf"),
        "c": float("nan"),
        "d": np.int64(3),
        "e": np.array([1.5, 2.5]),
        "f": (np.bool_(True), 0.5),
    }
    assert jsonable(payload) == {
        "a": "Infinity",
        "b": "-Infinity",
        "c": "NaN",
        "d": 3,
        "e": [1.5, 2.5],
        "f": [1, 0.5],
    }
    json.dumps(jsonable(payload))  # strict-JSON encodable


# -- bench + CLI wiring -------------------------------------------------


def test_serve_throughput_is_a_gated_headline():
    from repro.experiments import bench

    assert "serve_throughput" in bench.WORKLOADS
    assert "serve_throughput" in bench.GATED_HEADLINES


def test_cli_serve_parser():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--cache-size", "16", "--demo-size", "20"]
    )
    assert args.command == "serve"
    assert args.port == 0 and args.cache_size == 16 and args.demo_size == 20
    assert build_parser().epilog and "docs/" in build_parser().epilog
