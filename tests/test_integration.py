"""Cross-module integration tests: full pipelines on realistic data."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    KNNClassifier,
    check_sufficient_reason,
    closest_counterfactual,
    exists_counterfactual,
    find_witness,
    is_minimal_sufficient_reason,
    minimal_sufficient_reason,
    minimum_sufficient_reason,
    verify_witness,
)
from repro.datasets import DigitImages, gaussian_blobs, random_boolean_dataset

from .helpers import random_discrete_dataset


class TestDigitsPipeline:
    """The Figure 1 / Figure 6 workload, end to end."""

    @pytest.fixture(scope="class")
    def digits(self):
        rng = np.random.default_rng(42)
        images = DigitImages.generate(rng, digits=(4, 9), count_per_digit=10, side=8)
        binary = images.to_dataset(positive_digit=4, binarized=True)
        gray = images.to_dataset(positive_digit=4)
        query = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=8)
        x_gray = query.flattened()[0]
        x_bin = (x_gray >= 0.5).astype(float)
        return binary, gray, x_bin, x_gray

    def test_binary_counterfactual_pipelines_agree(self, digits):
        binary, _, x_bin, _ = digits
        milp = closest_counterfactual(binary, 1, "hamming", x_bin, method="hamming-milp")
        sat = closest_counterfactual(binary, 1, "hamming", x_bin, method="hamming-sat")
        assert milp.found and sat.found
        assert milp.distance == sat.distance
        clf = KNNClassifier(binary, k=1, metric="hamming")
        assert clf.classify(milp.y) != clf.classify(x_bin)
        assert clf.classify(sat.y) != clf.classify(x_bin)

    def test_minimal_sr_on_gray_digits(self, digits):
        _, gray, _, x_gray = digits
        X = minimal_sufficient_reason(gray, 1, "l1", x_gray)
        assert is_minimal_sufficient_reason(gray, 1, "l1", x_gray, X)
        # The reason should be much smaller than the 64 pixels.
        assert len(X) < 64

    def test_l2_counterfactual_on_gray_digits(self, digits):
        _, gray, _, x_gray = digits
        result = closest_counterfactual(gray, 1, "l2", x_gray)
        assert result.found
        clf = KNNClassifier(gray, k=1, metric="l2")
        assert clf.classify(result.y) != clf.classify(x_gray)
        assert result.distance < np.linalg.norm(x_gray) + 10  # sane magnitude


class TestExplanationRelationships:
    """Structural relations the theory guarantees between explanation kinds."""

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_minimum_size_at_most_minimal_size(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 3, 3)
        x = rng.integers(0, 2, size=5).astype(float)
        minimal = minimal_sufficient_reason(data, 1, "hamming", x)
        minimum = minimum_sufficient_reason(data, 1, "hamming", x)
        assert minimum.size <= len(minimal)
        assert check_sufficient_reason(data, 1, "hamming", x, minimum.X)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_counterfactual_bounds_radius_decision(self, seed):
        """exists(r) must be monotone in r and consistent with the optimum."""
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 3, 3)
        x = rng.integers(0, 2, size=5).astype(float)
        best = closest_counterfactual(data, 1, "hamming", x, method="hamming-brute")
        if not best.found:
            return
        assert exists_counterfactual(data, 1, "hamming", x, best.distance)
        if best.distance > 1:
            assert not exists_counterfactual(data, 1, "hamming", x, best.distance - 1)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_witness_for_counterfactual(self, seed):
        """Every counterfactual's label carries a Proposition-1 certificate."""
        rng = np.random.default_rng(seed)
        data = gaussian_blobs(rng, 3, 5, separation=2.0)
        clf = KNNClassifier(data, k=3, metric="l2")
        x = rng.normal(size=3)
        result = closest_counterfactual(data, 3, "l2", x)
        assert result.found
        w = find_witness(clf, result.y)
        assert w.label != clf.classify(x)
        assert verify_witness(clf, result.y, w)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=10)
    def test_sr_counterexample_is_itself_explainable(self, seed):
        """A counterexample to sufficiency admits its own counterfactual
        back across the boundary at distance 0 from... sanity loop."""
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 4, 3, 3)
        x = rng.integers(0, 2, size=4).astype(float)
        clf = KNNClassifier(data, k=1, metric="hamming")
        verdict = check_sufficient_reason(data, 1, "hamming", x, [0])
        if verdict:
            return
        y = verdict.counterexample
        # The counterexample is a counterfactual within Hamming distance n.
        assert clf.classify(y) != clf.classify(x)
        assert exists_counterfactual(data, 1, "hamming", x, float(data.dimension))


class TestScaleSmoke:
    """Paper-scale shapes at reduced size: hundreds of features still work."""

    def test_hamming_counterfactual_200_features(self):
        rng = np.random.default_rng(0)
        data = random_boolean_dataset(rng, 200, 60)
        x = rng.integers(0, 2, size=200).astype(float)
        result = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")
        assert result.found
        clf = KNNClassifier(data, k=1, metric="hamming")
        assert clf.classify(result.y) != clf.classify(x)

    def test_minimal_sr_100_features(self):
        rng = np.random.default_rng(1)
        data = random_boolean_dataset(rng, 100, 80)
        x = rng.integers(0, 2, size=100).astype(float)
        X = minimal_sufficient_reason(data, 1, "hamming", x)
        assert check_sufficient_reason(data, 1, "hamming", x, X)

    def test_l2_counterfactual_k5(self):
        # The witness enumeration is n^O(k): C(|S|, 3) * sum C(|S|, <=2)
        # pieces for k = 5, so the class size must stay small (5 per
        # class is ~160 pieces; 20 per class would be ~240k).
        rng = np.random.default_rng(2)
        data = gaussian_blobs(rng, 10, 5, separation=2.0)
        x = rng.normal(size=10)
        result = closest_counterfactual(data, 5, "l2", x)
        assert result.found
        clf = KNNClassifier(data, k=5, metric="l2")
        assert clf.classify(result.y) != clf.classify(x)
