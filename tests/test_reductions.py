"""Cross-validation of every hardness reduction against exact oracles.

Each test solves the source problem with an oracle, maps the instance
across the paper's reduction, solves the target explanation problem
with the library, and checks that the answers coincide — on random
small instances, in both directions where a forward witness map exists.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abductive import check_sufficient_reason, minimum_sufficient_reason
from repro.counterfactual import closest_counterfactual, exists_counterfactual
from repro.exceptions import ValidationError
from repro.knn import KNNClassifier
from repro.reductions import (
    bmcf,
    check_sr_discrete,
    clique,
    interdiction,
    knapsack,
    oracles,
    partition,
    vertex_cover,
)


def random_graph_with_edges(rng, n, p=0.5):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    if g.number_of_edges() == 0:
        g.add_edge(0, (1 % n) if n > 1 else 0)
    return g


class TestTheorem1Discrete:
    """Vertex Cover <-> Minimum-SR over the Hamming cube, k = 1."""

    @given(seed=st.integers(0, 100_000), n=st.integers(2, 6))
    @settings(max_examples=20)
    def test_minimum_sr_equals_minimum_cover(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_graph_with_edges(rng, n)
        instance = vertex_cover.vertex_cover_to_msr_discrete(g, budget=0)
        result = minimum_sufficient_reason(
            instance.dataset, instance.k, instance.metric, instance.x
        )
        assert result.size == oracles.minimum_vertex_cover_size(g)
        # Backward direction: the SR found must itself be a vertex cover.
        assert vertex_cover.sufficient_reason_is_vertex_cover(g, result.X)

    def test_cover_is_sufficient_reason(self):
        g = nx.cycle_graph(4)
        instance = vertex_cover.vertex_cover_to_msr_discrete(g, budget=2)
        cover = {0, 2}
        assert check_sufficient_reason(
            instance.dataset, 1, "hamming", instance.x, cover
        )
        non_cover = {0, 1}
        assert not check_sufficient_reason(
            instance.dataset, 1, "hamming", instance.x, non_cover
        )

    def test_query_is_classified_positive(self, rng):
        g = random_graph_with_edges(rng, 5)
        instance = vertex_cover.vertex_cover_to_msr_discrete(g, budget=1)
        clf = KNNClassifier(instance.dataset, k=1, metric="hamming")
        assert clf.classify(instance.x) == 1

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValidationError):
            vertex_cover.vertex_cover_to_msr_discrete(nx.empty_graph(3), budget=1)


class TestTheorem1Continuous:
    @pytest.mark.parametrize("k,p", [(1, 1), (1, 2), (3, 2), (3, 1), (1, 3)])
    def test_cover_iff_sufficient_reason(self, k, p, rng):
        # Keep the graph small: the k = 3 l2 check enumerates
        # C(|S-|, 2) * (1 + |S+|) polyhedra per sufficiency query.
        g = random_graph_with_edges(rng, 4)
        instance = vertex_cover.vertex_cover_to_msr_continuous(g, budget=0, k=k, p=p)
        clf = KNNClassifier(instance.dataset, k=k, metric=instance.metric)
        assert clf.classify(instance.x) == 1
        tau = oracles.minimum_vertex_cover_size(g)
        # Brute-force the Minimum-SR size using the l2 checker when p == 2,
        # otherwise verify the two directions via the classifier on the
        # adversarial points of the proof.
        if p == 2:
            result = minimum_sufficient_reason(
                instance.dataset, k, "l2", instance.x, method="brute"
            )
            assert result.size == tau

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_uncovered_edge_gives_counterexample(self, k, rng):
        """The proof's witness: edge point y_{j,1} flips when X misses e_j."""
        g = nx.path_graph(4)  # edges (0,1), (1,2), (2,3)
        instance = vertex_cover.vertex_cover_to_msr_continuous(g, budget=0, k=k, p=2)
        clf = KNNClassifier(instance.dataset, k=k, metric="l2")
        # X = {0, 3} misses edge (1, 2); the corresponding negative point
        # agrees with x on X and must classify 0.
        bad_edge_point = None
        for row in instance.dataset.negatives:
            if row[1] > 0 and row[2] > 0:
                bad_edge_point = row
                break
        assert bad_edge_point is not None
        assert bad_edge_point[0] == 0.0 and bad_edge_point[3] == 0.0
        assert clf.classify(bad_edge_point) == 0


class TestTheorem4Knapsack:
    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 5),
    )
    @settings(max_examples=20)
    def test_decision_matches_oracle_k1(self, seed, n):
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 6, size=n).tolist()
        values = rng.integers(1, 6, size=n).tolist()
        capacity = int(rng.integers(1, sum(weights) + 1))
        expected = oracles.half_value_knapsack_exists(weights, values, capacity)
        instance = knapsack.knapsack_to_cf_l1(weights, values, capacity)
        got = exists_counterfactual(
            instance.dataset, 1, "l1", instance.x, instance.radius
        )
        assert got == expected

    def test_forward_witness(self):
        weights, values, capacity = [2, 3], [4, 4], 2
        # Take item 0: weight 2 <= 2, value 4 >= 4.
        instance = knapsack.knapsack_to_cf_l1(weights, values, capacity)
        y = knapsack.knapsack_solution_to_counterfactual(weights, values, capacity, {0})
        clf = KNNClassifier(instance.dataset, k=1, metric="l1")
        assert np.abs(y - instance.x).sum() <= instance.radius
        assert clf.classify(y) != clf.classify(instance.x)

    @pytest.mark.parametrize("k", [3, 5])
    def test_general_k_padding(self, k, rng):
        weights = [2, 3, 4]
        values = [3, 5, 2]
        capacity = 5
        expected = oracles.half_value_knapsack_exists(weights, values, capacity)
        instance = knapsack.knapsack_to_cf_l1_general_k(weights, values, capacity, k)
        assert instance.dataset.n_positive == (k + 1) // 2
        assert instance.dataset.n_negative == (k + 1) // 2
        got = exists_counterfactual(
            instance.dataset, k, "l1", instance.x, instance.radius
        )
        assert got == expected

    def test_partition_chain(self):
        # partition -> half-value knapsack -> counterfactual decision.
        for values, expected in [([1, 2, 3], True), ([2, 3], False)]:
            w, v, cap = knapsack.partition_to_half_value_knapsack(values)
            assert oracles.half_value_knapsack_exists(w, v, cap) == expected
            assert oracles.partition_exists(values) == expected


class TestTheorem5Partition:
    @given(values=st.lists(st.integers(1, 8), min_size=1, max_size=5))
    @settings(max_examples=20)
    def test_multiplicity_form(self, values):
        expected_partition = oracles.partition_exists(values)
        instance = partition.partition_to_check_sr_l1_multiplicity(values, k=3)
        clf = KNNClassifier(instance.dataset, k=3, metric="l1")
        assert clf.classify(instance.x) == 0
        # Empty X is sufficient iff NO partition exists.  Verify with the
        # forward witness when a partition exists.
        if expected_partition:
            subset = _find_partition_subset(values)
            y = partition.partition_solution_to_counterexample(
                values, subset, instance
            )
            assert clf.classify(y) == 1  # the counterexample flips

    @given(values=st.lists(st.integers(1, 6), min_size=1, max_size=4))
    @settings(max_examples=15)
    def test_multiplicity_free_form(self, values):
        expected_partition = oracles.partition_exists(values)
        instance = partition.partition_to_check_sr_l1(values, k=3)
        clf = KNNClassifier(instance.dataset, k=3, metric="l1")
        assert clf.classify(instance.x) == 0
        assert not instance.dataset.has_multiplicities
        if expected_partition:
            subset = _find_partition_subset(values)
            y = partition.partition_solution_to_counterexample(
                values, subset, instance
            )
            assert clf.classify(y) == 1
            # y agrees with x on the auxiliary coordinates X.
            aux = sorted(instance.X)
            np.testing.assert_array_equal(y[aux], instance.x[aux])

    def test_k1_rejected(self):
        with pytest.raises(ValidationError):
            partition.partition_to_check_sr_l1_multiplicity([1, 1], k=1)


def _find_partition_subset(values):
    from itertools import combinations

    total = sum(values)
    for size in range(len(values) + 1):
        for c in combinations(range(len(values)), size):
            if 2 * sum(values[i] for i in c) == total:
                return set(c)
    raise AssertionError("caller guaranteed a partition exists")


class TestProposition5BMCF:
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 5))
    @settings(max_examples=15)
    def test_vc_to_bmcf(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_graph_with_edges(rng, n)
        budget = int(rng.integers(0, n + 1))
        expected = oracles.has_vertex_cover(g, budget)
        instance = bmcf.vertex_cover_to_bmcf(g, budget, p=0)
        got = oracles.bmcf_exists(instance.matrix, instance.budget, instance.p)
        assert got == expected

    def test_padding_helper(self):
        g = nx.path_graph(3)
        padded = bmcf.pad_graph_with_isolated_edges(g, 2)
        assert padded.number_of_edges() == g.number_of_edges() + 2
        assert padded.number_of_nodes() == g.number_of_nodes() + 4


class TestTheorem6Hamming:
    @staticmethod
    def _random_matrix(rng, odd_rows: bool):
        n_cols = int(rng.integers(3, 6))
        n_rows = int(rng.integers(1, 4))
        rows = set()
        attempts = 0
        while len(rows) < n_rows and attempts < 500:
            attempts += 1
            row = rng.integers(0, 2, size=n_cols)
            if odd_rows and row.sum() % 2 == 0:
                flip = int(rng.integers(0, n_cols))
                row[flip] = 1 - row[flip]
            if row.sum() <= n_cols - 2:  # at least two zeros
                rows.add(tuple(int(b) for b in row))
        return np.array(sorted(rows))

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_odd_rows_decide_strict_bmcf_k1(self, seed):
        """Odd row weights (the Prop. 5 shape): strict BMCF == CF answer."""
        rng = np.random.default_rng(seed)
        matrix = self._random_matrix(rng, odd_rows=True)
        if matrix.size == 0:
            return
        budget = int(rng.integers(1, matrix.shape[1] + 1))
        instance = bmcf.BMCFInstance(matrix=matrix, budget=budget, p=0)
        expected = oracles.bmcf_exists(matrix, budget, 0)
        assert expected == oracles.weak_bmcf_exists(matrix, budget, 0)  # parity
        cf = bmcf.bmcf_to_cf_hamming(instance)
        clf = KNNClassifier(cf.dataset, k=cf.k, metric="hamming")
        assert clf.classify(cf.x) == 1
        got = exists_counterfactual(cf.dataset, cf.k, "hamming", cf.x, cf.radius)
        assert got == expected

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_general_rows_decide_weak_bmcf_k1(self, seed):
        """Arbitrary matrices: the instance decides the weak variant."""
        rng = np.random.default_rng(seed)
        matrix = self._random_matrix(rng, odd_rows=False)
        if matrix.size == 0:
            return
        budget = int(rng.integers(1, matrix.shape[1] + 1))
        instance = bmcf.BMCFInstance(matrix=matrix, budget=budget, p=0)
        expected = oracles.weak_bmcf_exists(matrix, budget, 0)
        cf = bmcf.bmcf_to_cf_hamming(instance, require_odd_rows=False)
        got = exists_counterfactual(cf.dataset, cf.k, "hamming", cf.x, cf.radius)
        assert got == expected

    def test_bmcf_to_cf_k3(self):
        """p = 1 (k = 3) on a hand-checked odd-rows instance."""
        matrix = np.array(
            [
                [1, 0, 0, 0, 0],
                [0, 1, 0, 0, 0],
                [1, 1, 1, 0, 0],
            ]
        )
        assert bmcf.rows_all_odd(matrix)
        for budget in (1, 2, 3):
            instance = bmcf.BMCFInstance(matrix=matrix, budget=budget, p=1)
            expected = oracles.bmcf_exists(matrix, budget, 1)
            cf = bmcf.bmcf_to_cf_hamming(instance)
            got = exists_counterfactual(cf.dataset, cf.k, "hamming", cf.x, cf.radius)
            assert got == expected

    def test_row_preconditions(self):
        with pytest.raises(ValidationError):
            bmcf.bmcf_to_cf_hamming(
                bmcf.BMCFInstance(matrix=np.array([[1, 1, 0]]), budget=1, p=0)
            )  # only one zero in the row
        with pytest.raises(ValidationError):
            bmcf.bmcf_to_cf_hamming(
                bmcf.BMCFInstance(
                    matrix=np.array([[0, 0, 1], [0, 0, 1]]), budget=1, p=0
                )
            )  # repeated rows
        with pytest.raises(ValidationError):
            bmcf.bmcf_to_cf_hamming(
                bmcf.BMCFInstance(matrix=np.array([[1, 1, 0, 0]]), budget=1, p=0)
            )  # even row weight without the opt-out

    def test_full_chain_from_vertex_cover(self, rng):
        """VC → Prop.5 BMCF → Thm.6 CF, end to end against the VC oracle."""
        g = random_graph_with_edges(rng, 4, p=0.6)
        for budget in (0, 1, 2):
            expected = oracles.has_vertex_cover(g, budget)
            bm = bmcf.vertex_cover_to_bmcf(g, budget, p=0)
            assert bmcf.rows_all_odd(bm.matrix)
            cf = bmcf.bmcf_to_cf_hamming(bm)
            got = exists_counterfactual(cf.dataset, cf.k, "hamming", cf.x, cf.radius)
            assert got == expected


class TestTheorem7CheckSR:
    @given(seed=st.integers(0, 100_000), n=st.integers(4, 6))
    @settings(max_examples=10)
    def test_empty_set_sufficiency_vs_cover(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_graph_with_edges(rng, n, p=0.6)
        q = int(rng.integers((n + 1) // 2, n - 1))  # n/2 <= q <= n-2
        instance = check_sr_discrete.vertex_cover_to_check_sr_hamming(g, q, k=3)
        expected_cover = oracles.has_vertex_cover(g, q)
        clf = KNNClassifier(instance.dataset, k=3, metric="hamming")
        assert clf.classify(instance.x) == 0
        verdict = check_sufficient_reason(
            instance.dataset, 3, "hamming", instance.x, instance.X, method="brute"
        )
        # X sufficient iff NO cover of size <= q exists.
        assert bool(verdict) == (not expected_cover)
        if expected_cover:
            cover = _some_cover(g, q)
            z = check_sr_discrete.cover_to_counterexample(g, cover, instance)
            assert clf.classify(z) == 1

    def test_budget_normalization(self, rng):
        g = random_graph_with_edges(rng, 6, p=0.5)
        q = 1  # below n/2
        padded, q2 = check_sr_discrete.normalize_cover_budget(g, q)
        assert padded.number_of_nodes() / 2 <= q2
        assert oracles.has_vertex_cover(g, q) == oracles.has_vertex_cover(padded, q2)

    def test_trivial_budget_rejected(self):
        g = nx.path_graph(4)
        with pytest.raises(ValidationError):
            check_sr_discrete.normalize_cover_budget(g, 3)


def _some_cover(graph, q):
    from itertools import combinations

    nodes = list(graph.nodes)
    for size in range(q + 1):
        for C in combinations(nodes, size):
            C = set(C)
            if all(u in C or v in C for u, v in graph.edges):
                # Pad to exactly q as the proof's property (1) assumes.
                others = [v for v in nodes if v not in C]
                return C | set(others[: q - len(C)])
    raise AssertionError("caller guaranteed a cover exists")


class TestTheorem8MSR:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=8)
    def test_msr_budget_vs_exists_forall(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        g = random_graph_with_edges(rng, n, p=0.7)
        q = 2  # n/2 <= q <= n-2 for n = 4
        p = 1
        efvc = interdiction.ExistsForallVCInstance(graph=g, p=p, q=q)
        expected = oracles.exists_forall_vertex_cover(g, p, q)
        msr = interdiction.exists_forall_vc_to_msr(efvc, k=3)
        # Decide "SR of size <= p exists" by brute-force subset search
        # with the brute checker (the Sigma2p cell has no better exact tool).
        found = False
        from itertools import combinations

        for size in range(p + 1):
            for X in combinations(range(msr.dataset.dimension), size):
                if check_sufficient_reason(
                    msr.dataset, 3, "hamming", msr.x, X, method="brute"
                ):
                    found = True
                    break
            if found:
                break
        assert found == expected


class TestLemma2Embedding:
    @pytest.mark.parametrize(
        "graph", [nx.cycle_graph(5), nx.complete_graph(4), nx.cycle_graph(6)]
    )
    def test_distance_properties(self, graph):
        vectors = clique.embed_regular_graph(graph)
        n = graph.number_of_nodes()
        d = next(deg for _, deg in graph.degree)
        assert vectors.shape == (n, n * n + n + d - 5)
        weights = vectors.sum(axis=1)
        np.testing.assert_array_equal(weights, np.full(n, 2 * (n + d - 3)))
        for u in range(n):
            for v in range(u + 1, n):
                hamming = int(np.abs(vectors[u] - vectors[v]).sum())
                if graph.has_edge(u, v):
                    assert hamming == 2 * (n + d - 3)
                else:
                    assert hamming == 2 * (n + d - 1)

    def test_irregular_graph_rejected(self):
        with pytest.raises(ValidationError):
            clique.embed_regular_graph(nx.path_graph(4))

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValidationError):
            clique.embed_regular_graph(nx.cycle_graph(2) if False else nx.Graph([(0, 1)]))


class TestLemma3Radii:
    @given(k=st.integers(1, 6), alpha=st.floats(0.5, 10))
    @settings(max_examples=20)
    def test_simplex_radius_formula(self, k, alpha):
        r = clique.simplex_radius(alpha, k)
        assert 0 < r < alpha
        assert r == pytest.approx(alpha * np.sqrt(k / (2 * (k + 1))))

    @given(k=st.integers(1, 6), alpha=st.floats(0.5, 5), ratio=st.floats(1.001, 1.2))
    @settings(max_examples=20)
    def test_non_clique_bound_exceeds_simplex(self, k, alpha, ratio):
        # In the reduction, beta/alpha is close to 1 (delta is tiny); the
        # bound only makes sense while the denominator stays positive.
        beta = alpha * ratio
        assert clique.non_clique_radius_lower_bound(
            alpha, beta, k
        ) > clique.simplex_radius(alpha, k)

    def test_simplex_center_is_equidistant(self):
        """Lemma 3a's witness on an actual embedded clique."""
        g = nx.complete_graph(4)
        vectors = clique.embed_regular_graph(g)
        k = 3
        chosen = vectors[:k]
        center = chosen.sum(axis=0) / (k + 1)
        alpha = np.sqrt(2 * (4 + 3 - 3))
        expected = clique.simplex_radius(alpha, k)
        assert np.linalg.norm(center) == pytest.approx(expected)
        for v in chosen:
            assert np.linalg.norm(center - v) <= np.linalg.norm(center) + 1e-9


class TestTheorem3Clique:
    @pytest.mark.parametrize(
        "graph, k, has_clique",
        [
            (nx.complete_graph(4), 3, True),   # K4 has triangles
            (nx.cycle_graph(5), 3, False),     # C5 is triangle-free
            (nx.cycle_graph(5), 2, True),      # any edge is a 2-clique
        ],
    )
    def test_decision_matches_oracle(self, graph, k, has_clique):
        assert oracles.has_k_clique(graph, k) == has_clique
        instance = clique.clique_to_cf_l2(graph, k)
        clf = KNNClassifier(instance.dataset, k=instance.k, metric="l2")
        assert clf.classify(instance.x) == 0
        result = closest_counterfactual(instance.dataset, instance.k, "l2", instance.x)
        assert result.found
        if has_clique:
            assert result.infimum <= instance.radius + 1e-6
        else:
            assert result.infimum > instance.radius + 1e-9

    def test_forward_witness(self):
        g = nx.complete_graph(4)
        instance = clique.clique_to_cf_l2(g, 3)
        y = clique.clique_to_counterfactual(instance, [0, 1, 2])
        clf = KNNClassifier(instance.dataset, k=instance.k, metric="l2")
        assert np.linalg.norm(y - instance.x) == pytest.approx(instance.radius)
        assert clf.classify(y) == 1
