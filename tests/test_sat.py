"""Tests for the CDCL SAT solver with cardinality constraints.

The core validation is a fuzz loop: random CNF + cardinality formulas
are solved both by the CDCL engine and by brute-force enumeration of
all assignments, and the SAT/UNSAT verdicts (plus model validity) must
agree.
"""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ResourceLimitError, ValidationError
from repro.solvers.sat import CNFBuilder, SATSolver, minimize_bound
from repro.solvers.sat.solver import luby


def brute_force_satisfiable(num_vars, clauses, cards):
    """Exhaustive model search; cards are (lits, bound, guard) triples."""
    for bits in product([False, True], repeat=num_vars):
        def val(lit):
            return bits[abs(lit) - 1] ^ (lit < 0)

        if not all(any(val(l) for l in clause) for clause in clauses):
            continue
        ok = True
        for lits, bound, guard in cards:
            if guard is not None and not val(guard):
                continue
            if sum(val(l) for l in lits) < bound:
                ok = False
                break
        if ok:
            return bits
    return None


def check_model(model, clauses, cards):
    def val(lit):
        return model[abs(lit)] ^ (lit < 0)

    for clause in clauses:
        assert any(val(l) for l in clause), f"clause {clause} violated"
    for lits, bound, guard in cards:
        if guard is not None and not val(guard):
            continue
        assert sum(val(l) for l in lits) >= bound, f"card {(lits, bound, guard)} violated"


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestClauses:
    def test_trivial_sat(self):
        s = SATSolver(2)
        s.add_clause([1, 2])
        model = s.solve()
        assert model is not None
        assert model[1] or model[2]

    def test_unit_propagation_chain(self):
        s = SATSolver(3)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        model = s.solve()
        assert model == {1: True, 2: True, 3: True}

    def test_simple_unsat(self):
        s = SATSolver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() is None

    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1h1, p2h1, not both.
        s = SATSolver(2)
        s.add_clause([1])
        s.add_clause([2])
        s.add_clause([-1, -2])
        assert s.solve() is None

    def test_tautology_is_dropped(self):
        s = SATSolver(1)
        s.add_clause([1, -1])
        assert s.solve() is not None

    def test_empty_clause_unsat(self):
        s = SATSolver(1)
        s.add_clause([])
        assert s.solve() is None

    def test_bad_literal(self):
        s = SATSolver(1)
        with pytest.raises(ValidationError):
            s.add_clause([0])
        with pytest.raises(ValidationError):
            s.add_clause([5])

    def test_conflict_limit(self):
        # A hard pigeonhole instance (5 pigeons, 4 holes) with a tiny budget.
        builder = CNFBuilder()
        holes = 4
        pigeons = 5
        v = {}
        for p in range(pigeons):
            for h in range(holes):
                v[p, h] = builder.new_var()
        for p in range(pigeons):
            builder.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    builder.add_clause([-v[p1, h], -v[p2, h]])
        with pytest.raises(ResourceLimitError):
            builder.solve(conflict_limit=3)


class TestCardinality:
    def test_at_least(self):
        s = SATSolver(3)
        s.add_cardinality([1, 2, 3], 2)
        model = s.solve()
        assert sum(model.values()) >= 2

    def test_at_most(self):
        s = SATSolver(3)
        s.add_at_most([1, 2, 3], 1)
        s.add_clause([1])
        model = s.solve()
        assert model[1] and not model[2] and not model[3]

    def test_exactly_via_builder(self):
        b = CNFBuilder()
        xs = b.new_vars(5)
        b.add_exactly(xs, 3)
        model = b.solve()
        assert sum(model[x] for x in xs) == 3

    def test_conflict_between_cards(self):
        s = SATSolver(3)
        s.add_cardinality([1, 2, 3], 2)  # >= 2 true
        s.add_at_most([1, 2, 3], 1)  # <= 1 true
        assert s.solve() is None

    def test_guard_escapes_constraint(self):
        s = SATSolver(4)
        # guard 4 -> at least 3 of {1,2,3}; force 1 false.
        s.add_cardinality([1, 2, 3], 3, guard=4)
        s.add_clause([-1])
        model = s.solve()
        assert model is not None
        if model[4]:  # pragma: no cover - solver picks the easy escape
            assert model[1] and model[2] and model[3]
        # Now force the guard: becomes UNSAT.
        s2 = SATSolver(4)
        s2.add_cardinality([1, 2, 3], 3, guard=4)
        s2.add_clause([-1])
        s2.add_clause([4])
        assert s2.solve() is None

    def test_bound_equal_length_forces_all(self):
        s = SATSolver(3)
        s.add_cardinality([1, -2, 3], 3)
        model = s.solve()
        assert model == {1: True, 2: False, 3: True}

    def test_bound_exceeding_length(self):
        s = SATSolver(2)
        s.add_cardinality([1, 2], 3)
        assert s.solve() is None
        # With a guard it just kills the guard instead.
        s2 = SATSolver(3)
        s2.add_cardinality([1, 2], 3, guard=3)
        model = s2.solve()
        assert model is not None and not model[3]

    def test_duplicate_vars_rejected(self):
        s = SATSolver(2)
        with pytest.raises(ValidationError):
            s.add_cardinality([1, 1], 1)


class TestFuzzAgainstBruteForce:
    @given(
        seed=st.integers(0, 1_000_000),
        num_vars=st.integers(1, 7),
        n_clauses=st.integers(0, 12),
        n_cards=st.integers(0, 3),
    )
    @settings(max_examples=120)
    def test_random_formulas(self, seed, num_vars, n_clauses, n_cards):
        rng = np.random.default_rng(seed)
        clauses = []
        for _ in range(n_clauses):
            width = int(rng.integers(1, min(4, num_vars) + 1))
            vs = rng.choice(num_vars, size=width, replace=False) + 1
            clauses.append([int(v) * (1 if rng.random() < 0.5 else -1) for v in vs])
        cards = []
        for _ in range(n_cards):
            width = int(rng.integers(1, num_vars + 1))
            vs = rng.choice(num_vars, size=width, replace=False) + 1
            lits = tuple(int(v) * (1 if rng.random() < 0.5 else -1) for v in vs)
            bound = int(rng.integers(0, width + 1))
            guard = None
            if rng.random() < 0.4:
                g = int(rng.integers(1, num_vars + 1))
                if g not in [abs(l) for l in lits]:
                    guard = g * (1 if rng.random() < 0.5 else -1)
            cards.append((lits, bound, guard))
        solver = SATSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        for lits, bound, guard in cards:
            solver.add_cardinality(lits, bound, guard)
        model = solver.solve()
        reference = brute_force_satisfiable(num_vars, clauses, cards)
        if reference is None:
            assert model is None
        else:
            assert model is not None
            check_model(model, clauses, cards)


class TestCNFBuilder:
    def test_named_variables(self):
        b = CNFBuilder()
        x = b.new_var("x")
        assert b.var("x") == x
        with pytest.raises(ValidationError):
            b.new_var("x")

    def test_undeclared_variable_rejected(self):
        b = CNFBuilder()
        b.new_var()
        with pytest.raises(ValidationError):
            b.add_clause([2])

    def test_at_least_one_becomes_clause(self):
        b = CNFBuilder()
        xs = b.new_vars(3)
        b.add_at_least(xs, 1)
        assert len(b.clauses) == 1 and len(b.cards) == 0

    def test_knf_dump(self):
        b = CNFBuilder()
        xs = b.new_vars(3)
        g = b.new_var()
        b.add_clause([xs[0], -xs[1]])
        b.add_at_least(xs, 2, guard=g)
        text = b.to_knf()
        assert text.startswith("p knf 4 2")
        assert "k 2 g -4 1 2 3 0" in text

    def test_builder_reusable(self):
        b = CNFBuilder()
        xs = b.new_vars(2)
        b.add_clause([xs[0]])
        m1 = b.solve()
        m2 = b.solve()
        assert m1[xs[0]] and m2[xs[0]]


class TestMinimizeBound:
    @pytest.mark.parametrize("strategy", ["binary", "linear"])
    def test_finds_threshold(self, strategy):
        calls = []

        def feasible(t):
            calls.append(t)
            return "ok" if t >= 7 else None

        result = minimize_bound(feasible, 0, 20, strategy=strategy)
        assert result == (7, "ok")

    @pytest.mark.parametrize("strategy", ["binary", "linear"])
    def test_all_infeasible(self, strategy):
        assert minimize_bound(lambda t: None, 0, 5, strategy=strategy) is None

    def test_lo_feasible(self):
        assert minimize_bound(lambda t: t, 3, 9) == (3, 3)

    def test_empty_range(self):
        with pytest.raises(ValidationError):
            minimize_bound(lambda t: t, 5, 4)

    def test_bad_strategy(self):
        with pytest.raises(ValidationError):
            minimize_bound(lambda t: t, 0, 1, strategy="galloping")

    @given(threshold=st.integers(0, 30), hi=st.integers(0, 30))
    @settings(max_examples=40)
    def test_strategies_agree(self, threshold, hi):
        def feasible(t):
            return t if t >= threshold else None

        a = minimize_bound(feasible, 0, hi, strategy="binary")
        b = minimize_bound(feasible, 0, hi, strategy="linear")
        assert a == b
