"""Edge-case and failure-injection tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, KNNClassifier
from repro.exceptions import (
    ResourceLimitError,
    UnboundedError,
    ValidationError,
)
from repro.knn.reference import classify_by_definition
from repro.solvers.milp import MILPModel
from repro.solvers.sat import SATSolver


class TestReferenceClassifier:
    def test_requires_k_points(self):
        data = Dataset([[0.0]], [[1.0]])
        with pytest.raises(ValueError):
            classify_by_definition(data, 3, "l2", [0.0])

    def test_tie_goes_positive(self):
        data = Dataset([[1.0]], [[-1.0]])
        assert classify_by_definition(data, 1, "l2", [0.0]) == 1

    def test_multiplicities_expanded(self):
        data = Dataset([[1.0]], [[0.0]], negative_multiplicities=[2])
        assert classify_by_definition(data, 3, "l2", [0.0]) == 0


class TestMILPEdges:
    def test_unbounded_bnb(self):
        m = MILPModel()
        x = m.add_var(integer=True)  # free integer
        m.set_objective({x: 1})
        with pytest.raises(UnboundedError):
            m.solve(engine="bnb")

    def test_unbounded_scipy(self):
        m = MILPModel()
        x = m.add_var()
        m.set_objective({x: 1})
        res = m.solve(engine="scipy")
        assert res.status == "unbounded"

    def test_node_limit(self):
        # A knapsack-style instance with an intentionally tiny node budget.
        m = MILPModel()
        xs = [m.add_binary() for _ in range(12)]
        weights = [3, 5, 7, 9, 11, 13, 2, 4, 6, 8, 10, 12]
        m.add_constraint({x: w for x, w in zip(xs, weights)}, "<=", 30)
        values = [4, 6, 8, 9, 12, 13, 3, 5, 7, 8, 11, 13]
        m.set_objective({x: v for x, v in zip(xs, values)}, maximize=True)
        with pytest.raises(ResourceLimitError):
            m.solve(engine="bnb", node_limit=1)

    def test_no_objective_feasibility_check(self):
        m = MILPModel()
        x = m.add_binary()
        m.add_constraint({x: 1}, ">=", 1)
        res = m.solve()
        assert res.optimal
        assert res.value(x) == 1

    def test_empty_model(self):
        m = MILPModel()
        m.add_var(lb=0, ub=1)
        res = m.solve()
        assert res.optimal
        assert res.objective == 0.0


class TestSATStatistics:
    def test_counters_advance(self):
        s = SATSolver(6)
        # A small unsatisfiable pigeonhole to force conflicts.
        v = {(p, h): p * 2 + h + 1 for p in range(3) for h in range(2)}
        for p in range(3):
            s.add_clause([v[p, 0], v[p, 1]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve() is None
        assert s.conflicts > 0
        assert s.propagations > 0

    def test_zero_vars(self):
        s = SATSolver(0)
        assert s.solve() == {}

    def test_adding_after_solve_rejected(self):
        s = SATSolver(2)
        s.add_clause([1, 2])
        s.solve()
        # After solving, the trail has decisions; further adds are refused.
        if s._trail_lim:
            with pytest.raises(ValidationError):
                s.add_clause([-1])


class TestDegenerateDatasets:
    def test_same_point_in_both_classes(self):
        # The same vector positive and negative: the optimistic rule makes
        # the tie go positive everywhere near it.
        data = Dataset([[0.0, 0.0]], [[0.0, 0.0]])
        clf = KNNClassifier(data, k=1, metric="l2")
        assert clf.classify([0.0, 0.0]) == 1
        assert clf.classify([5.0, 5.0]) == 1

    def test_zero_dimension_rejected(self):
        with pytest.raises(Exception):
            Dataset(np.empty((1, 0)), np.empty((1, 0)))
        # (a 0-dimensional dataset has no usable geometry)

    def test_single_point_dataset(self):
        data = Dataset([[1.0, 2.0]], [])
        clf = KNNClassifier(data, k=1)
        assert clf.classify([0.0, 0.0]) == 1
        assert clf.margin([0.0, 0.0]) == np.inf
