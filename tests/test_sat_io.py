"""Tests for KNF round-tripping and model enumeration."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.solvers.sat import CNFBuilder
from repro.solvers.sat.io import enumerate_models, from_knf


def brute_force_models(builder: CNFBuilder):
    """All satisfying assignments by exhaustive enumeration."""
    models = set()
    n = builder.num_vars
    for bits in product([False, True], repeat=n):
        def val(lit):
            return bits[abs(lit) - 1] ^ (lit < 0)

        if not all(any(val(l) for l in clause) for clause in builder.clauses):
            continue
        ok = True
        for card in builder.cards:
            if card.guard is not None and not val(card.guard):
                continue
            if sum(val(l) for l in card.lits) < card.bound:
                ok = False
                break
        if ok:
            models.add(bits)
    return models


class TestKNFRoundTrip:
    def _random_builder(self, rng, num_vars):
        builder = CNFBuilder()
        xs = builder.new_vars(num_vars)
        for _ in range(int(rng.integers(1, 6))):
            width = int(rng.integers(1, num_vars + 1))
            chosen = rng.choice(num_vars, size=width, replace=False)
            builder.add_clause(
                [int(xs[i]) * (1 if rng.random() < 0.5 else -1) for i in chosen]
            )
        for _ in range(int(rng.integers(0, 3))):
            width = int(rng.integers(2, num_vars + 1))
            chosen = rng.choice(num_vars, size=width, replace=False)
            lits = [int(xs[i]) * (1 if rng.random() < 0.5 else -1) for i in chosen]
            bound = int(rng.integers(2, width + 1))
            guard = None
            leftover = [xs[i] for i in range(num_vars) if i not in chosen]
            if leftover and rng.random() < 0.5:
                guard = int(leftover[0])
            builder.add_at_least(lits, bound, guard=guard)
        return builder

    @given(seed=st.integers(0, 100_000), num_vars=st.integers(2, 6))
    @settings(max_examples=30)
    def test_roundtrip_preserves_models(self, seed, num_vars):
        rng = np.random.default_rng(seed)
        original = self._random_builder(rng, num_vars)
        parsed = from_knf(original.to_knf())
        assert parsed.num_vars == original.num_vars
        assert brute_force_models(parsed) == brute_force_models(original)

    def test_parse_errors(self):
        with pytest.raises(ValidationError):
            from_knf("1 2 0\n")  # constraint before header
        with pytest.raises(ValidationError):
            from_knf("p cnf 2 1\n1 2 0\n")  # wrong format tag
        with pytest.raises(ValidationError):
            from_knf("p knf 2 1\n1 2\n")  # missing terminator
        with pytest.raises(ValidationError):
            from_knf("c only comments\n")

    def test_comments_ignored(self):
        builder = from_knf("c hello\np knf 2 1\nc mid\n1 -2 0\n")
        assert builder.num_vars == 2
        assert builder.clauses == [(1, -2)]


class TestEnumeration:
    def test_enumerates_all_models(self):
        builder = CNFBuilder()
        xs = builder.new_vars(3)
        builder.add_at_least(xs, 2)
        models = list(enumerate_models(builder))
        projections = {tuple(m[v] for v in xs) for m in models}
        assert projections == {
            bits for bits in product([False, True], repeat=3) if sum(bits) >= 2
        }

    def test_projection_variables(self):
        builder = CNFBuilder()
        a, b = builder.new_vars(2)
        builder.add_clause([a, b])
        models = list(enumerate_models(builder, over=[a]))
        # Distinct on `a` only: at most one model per value of a.
        values = [m[a] for m in models]
        assert len(values) == len(set(values))

    def test_unsat_yields_nothing(self):
        builder = CNFBuilder()
        (a,) = builder.new_vars(1)
        builder.add_clause([a])
        builder.add_clause([-a])
        assert list(enumerate_models(builder)) == []

    def test_limit_guard(self):
        builder = CNFBuilder()
        builder.new_vars(4)  # unconstrained: 16 models
        with pytest.raises(ValidationError):
            list(enumerate_models(builder, limit=3))

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_enumeration_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        builder = TestKNFRoundTrip()._random_builder(rng, 4)
        expected = brute_force_models(builder)
        got = {
            tuple(m[v] for v in range(1, 5))
            for m in enumerate_models(builder)
        }
        assert got == expected
