"""Tests for the optimistic k-NN classifier against the raw definition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.knn import Dataset, KNNClassifier
from repro.knn.reference import classify_by_definition

from .helpers import random_continuous_dataset, random_discrete_dataset


class TestBasics:
    def test_1nn_simple(self):
        data = Dataset([[0.0, 0.0]], [[10.0, 10.0]])
        clf = KNNClassifier(data, k=1)
        assert clf.classify([1, 1]) == 1
        assert clf.classify([9, 9]) == 0

    def test_3nn_majority(self):
        data = Dataset([[0.0], [0.1], [10.0]], [[5.0], [5.1], [5.2]])
        clf = KNNClassifier(data, k=3, metric="l1")
        assert clf.classify([0.0]) == 1
        assert clf.classify([5.0]) == 0

    def test_optimistic_tie_goes_positive(self):
        # x is equidistant from one positive and one negative point.
        data = Dataset([[1.0]], [[-1.0]])
        clf = KNNClassifier(data, k=1)
        assert clf.classify([0.0]) == 1

    def test_even_k_rejected(self):
        data = Dataset([[0.0]], [[1.0]])
        with pytest.raises(ValidationError):
            KNNClassifier(data, k=2)

    def test_k_larger_than_dataset_rejected(self):
        data = Dataset([[0.0]], [[1.0]])
        with pytest.raises(ValidationError):
            KNNClassifier(data, k=3)

    def test_wrong_dimension_rejected(self):
        clf = KNNClassifier(Dataset([[0.0]], [[1.0]]), k=1)
        with pytest.raises(ValidationError):
            clf.classify([0.0, 1.0])

    def test_all_positive_dataset(self):
        data = Dataset([[0.0], [1.0], [2.0]], [])
        clf = KNNClassifier(data, k=3)
        assert clf.classify([5.0]) == 1

    def test_all_negative_dataset(self):
        data = Dataset([], [[0.0], [1.0], [2.0]])
        clf = KNNClassifier(data, k=3)
        assert clf.classify([5.0]) == 0

    def test_minority_positive_side(self):
        # Only one positive point but k=3: positives can never reach the
        # (k+1)/2 = 2 majority, so everything is negative.
        data = Dataset([[0.0]], [[10.0], [11.0]])
        clf = KNNClassifier(data, k=3)
        assert clf.classify([0.0]) == 0

    def test_classify_batch(self):
        data = Dataset([[0.0]], [[10.0]])
        clf = KNNClassifier(data, k=1)
        np.testing.assert_array_equal(clf.classify_batch([[1.0], [9.0]]), [1, 0])

    def test_margin_sign_matches_label(self):
        data = Dataset([[0.0, 0.0]], [[4.0, 0.0]])
        clf = KNNClassifier(data, k=1)
        assert clf.margin([1.0, 0.0]) > 0
        assert clf.margin([3.0, 0.0]) < 0
        assert clf.margin([2.0, 0.0]) == 0.0
        assert clf.classify([2.0, 0.0]) == 1  # tie -> positive

    def test_neighbors(self):
        data = Dataset([[0.0], [1.0]], [[5.0]])
        clf = KNNClassifier(data, k=3)
        pts, labels = clf.neighbors([0.0])
        assert pts.shape == (3, 1)
        assert labels[:2].all() and not labels[2]


class TestMultiplicityClassification:
    def test_multiplicity_wins_majority(self):
        # The negative point at 0 has multiplicity 3 >= (k+1)/2 for k=5.
        data = Dataset(
            [[1.0], [2.0], [3.0]],
            [[0.0]],
            negative_multiplicities=[3],
        )
        clf = KNNClassifier(data, k=5)
        assert clf.classify([0.0]) == 0

    def test_matches_expanded_dataset(self, rng):
        for _ in range(20):
            pos = rng.normal(size=(3, 2))
            neg = rng.normal(size=(2, 2))
            pm = rng.integers(1, 4, size=3)
            nm = rng.integers(1, 4, size=2)
            d = Dataset(pos, neg, positive_multiplicities=pm, negative_multiplicities=nm)
            k = min(5, len(d) if len(d) % 2 else len(d) - 1)
            clf_mult = KNNClassifier(d, k=k)
            clf_flat = KNNClassifier(d.expanded(), k=k)
            x = rng.normal(size=2)
            assert clf_mult.classify(x) == clf_flat.classify(x)


class TestAgainstDefinition:
    """The production rule must agree with the paper's raw definition."""

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 4),
        m_pos=st.integers(0, 4),
        m_neg=st.integers(0, 4),
        k=st.sampled_from([1, 3]),
    )
    @settings(max_examples=60)
    def test_discrete(self, seed, n, m_pos, m_neg, k):
        if m_pos + m_neg < max(k, 1):
            return
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, n, m_pos, m_neg)
        clf = KNNClassifier(data, k=k, metric="hamming")
        x = rng.integers(0, 2, size=n).astype(float)
        assert clf.classify(x) == classify_by_definition(data, k, "hamming", x)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 3),
        m_pos=st.integers(0, 4),
        m_neg=st.integers(0, 4),
        k=st.sampled_from([1, 3, 5]),
        metric=st.sampled_from(["l1", "l2", "lp:3"]),
    )
    @settings(max_examples=60)
    def test_continuous_integer_points(self, seed, n, m_pos, m_neg, k, metric):
        # Integer coordinates make ties common, stressing the optimistic rule.
        if m_pos + m_neg < k:
            return
        rng = np.random.default_rng(seed)
        data = random_continuous_dataset(rng, n, m_pos, m_neg, integer=True)
        clf = KNNClassifier(data, k=k, metric=metric)
        x = rng.integers(-4, 5, size=n).astype(float)
        assert clf.classify(x) == classify_by_definition(data, k, metric, x)
