"""Tests for the approximate Minimum-SR heuristics (future-work item)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abductive import check_sufficient_reason, minimum_sufficient_reason
from repro.abductive.approximate import (
    approximate_minimum_sufficient_reason,
    impact_order,
)
from repro.knn import Dataset

from .helpers import random_discrete_dataset


class TestImpactOrder:
    def test_permutation_of_all_components(self, rng):
        data = random_discrete_dataset(rng, 6, 3, 3)
        order = impact_order(data, 1, "hamming", np.zeros(6))
        assert sorted(order) == list(range(6))

    def test_one_class_dataset(self):
        data = Dataset([[0.0, 1.0], [1.0, 1.0]], [], discrete=True)
        assert impact_order(data, 1, "hamming", np.zeros(2)) == [0, 1]


class TestApproximation:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_output_is_sufficient(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 3, 3)
        x = rng.integers(0, 2, size=5).astype(float)
        result = approximate_minimum_sufficient_reason(data, 1, "hamming", x, restarts=3)
        assert check_sufficient_reason(data, 1, "hamming", x, result.X)
        assert result.size == len(result.X)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=12)
    def test_upper_bounds_exact_optimum(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 5, 3, 3)
        x = rng.integers(0, 2, size=5).astype(float)
        exact = minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
        approx = approximate_minimum_sufficient_reason(data, 1, "hamming", x, restarts=6)
        assert approx.size >= exact.size
        # Quality check: with restarts, the gap stays small on tiny data.
        assert approx.size <= exact.size + 2

    def test_example_2_heuristic_finds_the_singleton(self):
        """On the paper's Example 2, the impact order alone finds {2}."""
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        result = approximate_minimum_sufficient_reason(
            data, 1, "hamming", np.zeros(3), restarts=4
        )
        assert result.size == 1

    def test_l2_setting(self, rng):
        from .helpers import random_continuous_dataset

        data = random_continuous_dataset(rng, 4, 3, 3)
        x = rng.normal(size=4)
        result = approximate_minimum_sufficient_reason(data, 1, "l2", x, restarts=2)
        assert check_sufficient_reason(data, 1, "l2", x, result.X)
