"""Tests for assumption-based incremental SAT solving.

The core validation is a fuzz loop mirroring ``test_sat.py``: random
formulas are solved under several random assumption sets *on the same
solver instance*, and each verdict must agree with brute force over the
formula plus the assumptions as unit clauses.  The incremental bound
sweep (:func:`minimize_bound_assumptions`) is checked against the
rebuild-per-bound driver on toy cardinality encodings.
"""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ResourceLimitError, ValidationError
from repro.solvers.sat import (
    CNFBuilder,
    SATSolver,
    minimize_bound,
    minimize_bound_assumptions,
)


def brute_force_satisfiable(num_vars, clauses, cards, units=()):
    """Exhaustive model search; cards are (lits, bound, guard) triples."""
    for bits in product([False, True], repeat=num_vars):
        def val(lit):
            return bits[abs(lit) - 1] ^ (lit < 0)

        if not all(val(u) for u in units):
            continue
        if not all(any(val(l) for l in clause) for clause in clauses):
            continue
        ok = True
        for lits, bound, guard in cards:
            if guard is not None and not val(guard):
                continue
            if sum(val(l) for l in lits) < bound:
                ok = False
                break
        if ok:
            return bits
    return None


class TestAssumptions:
    def test_basic_sat_unsat(self):
        s = SATSolver(3)
        s.add_clause([1, 2])
        assert s.solve([-1]) is not None
        assert s.solve([-1, -2]) is None
        # The assumptions were not permanent: the formula is still SAT.
        model = s.solve()
        assert model is not None and (model[1] or model[2])

    def test_assumption_satisfied_in_model(self):
        s = SATSolver(4)
        s.add_clause([1, 2, 3, 4])
        model = s.solve([-2, 3])
        assert model is not None
        assert not model[2] and model[3]

    def test_contradictory_assumptions(self):
        s = SATSolver(2)
        s.add_clause([1, 2])
        assert s.solve([1, -1]) is None
        assert s.solve() is not None

    def test_unknown_assumption_literal_rejected(self):
        s = SATSolver(2)
        with pytest.raises(ValidationError):
            s.solve([5])

    def test_permanent_unsat_is_remembered(self):
        s = SATSolver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() is None
        assert s.solve() is None
        assert s.solve([1]) is None

    def test_clauses_added_between_solves(self):
        s = SATSolver(3)
        s.add_clause([1, 2, 3])
        assert s.solve() is not None
        s.add_clause([-1])
        s.add_clause([-2])
        model = s.solve()
        assert model == {1: False, 2: False, 3: True}
        s.add_clause([-3])
        assert s.solve() is None

    def test_cardinality_added_between_solves(self):
        s = SATSolver(4)
        assert s.solve() is not None
        s.add_cardinality([1, 2, 3, 4], 3)
        model = s.solve([-4])
        assert model is not None
        assert model[1] and model[2] and model[3] and not model[4]

    def test_new_var_growth(self):
        s = SATSolver(1)
        s.add_clause([1])
        assert s.solve() is not None
        fresh = s.new_vars(2)
        assert fresh == [2, 3]
        s.add_clause([-fresh[0], fresh[1]])
        model = s.solve([fresh[0]])
        assert model is not None and model[fresh[1]]

    def test_learnt_state_survives_assumption_switches(self):
        # A UNSAT pigeonhole core: the verdict must be stable across
        # repeated calls under changing assumptions (learnt clauses and
        # the permanent-UNSAT memo must not corrupt each other).
        builder = CNFBuilder()
        v = {(p, h): builder.new_var() for p in range(4) for h in range(3)}
        for p in range(4):
            builder.add_clause([v[p, h] for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    builder.add_clause([-v[p1, h], -v[p2, h]])
        guard = builder.new_var()
        solver = builder.build_solver()
        for _ in range(3):
            assert solver.solve([guard]) is None
            assert solver.solve() is None

    def test_conflict_limit_is_per_call(self):
        # An incremental sweep must give each solve() the same conflict
        # headroom a freshly built solver would have had, not bleed the
        # budget across calls.
        builder = CNFBuilder()
        v = {(p, h): builder.new_var() for p in range(4) for h in range(3)}
        for p in range(4):
            builder.add_clause([v[p, h] for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    builder.add_clause([-v[p1, h], -v[p2, h]])
        solver = builder.build_solver(conflict_limit=10_000)
        first = solver.conflicts
        assert solver.solve() is None
        spent = solver.conflicts - first
        assert 0 < spent <= 10_000
        # A second call starts from the accumulated total but must not
        # trip the limit just because the counter is already non-zero.
        assert solver.solve() is None

    def test_time_limit_raises_and_solver_recovers(self):
        # 6-into-5 pigeonhole: enough conflicts for the clock to fire.
        builder = CNFBuilder()
        holes, pigeons = 5, 6
        v = {(p, h): builder.new_var() for p in range(pigeons) for h in range(holes)}
        for p in range(pigeons):
            builder.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    builder.add_clause([-v[p1, h], -v[p2, h]])
        solver = builder.build_solver()
        with pytest.raises(ResourceLimitError):
            solver.solve(time_limit=0.0)
        # The solver is still usable after the aborted call.
        assert solver.solve() is None


class TestIncrementalFuzz:
    @given(
        seed=st.integers(0, 1_000_000),
        num_vars=st.integers(1, 6),
        n_clauses=st.integers(0, 10),
        n_cards=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_formulas_under_assumption_sets(
        self, seed, num_vars, n_clauses, n_cards
    ):
        rng = np.random.default_rng(seed)
        clauses = []
        for _ in range(n_clauses):
            width = int(rng.integers(1, min(4, num_vars) + 1))
            vs = rng.choice(num_vars, size=width, replace=False) + 1
            clauses.append([int(v) * (1 if rng.random() < 0.5 else -1) for v in vs])
        cards = []
        for _ in range(n_cards):
            width = int(rng.integers(1, num_vars + 1))
            vs = rng.choice(num_vars, size=width, replace=False) + 1
            lits = tuple(int(v) * (1 if rng.random() < 0.5 else -1) for v in vs)
            bound = int(rng.integers(0, width + 1))
            guard = None
            if rng.random() < 0.4:
                g = int(rng.integers(1, num_vars + 1))
                if g not in [abs(l) for l in lits]:
                    guard = g * (1 if rng.random() < 0.5 else -1)
            cards.append((lits, bound, guard))
        solver = SATSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        for lits, bound, guard in cards:
            solver.add_cardinality(lits, bound, guard)
        # Several assumption sets against the SAME solver instance, so
        # learnt clauses from one call are live during the next.
        for _ in range(4):
            n_assume = int(rng.integers(0, num_vars + 1))
            units = []
            if n_assume:
                vs = rng.choice(num_vars, size=n_assume, replace=False) + 1
                units = [int(v) * (1 if rng.random() < 0.5 else -1) for v in vs]
            model = solver.solve(units)
            reference = brute_force_satisfiable(num_vars, clauses, cards, units)
            if reference is None:
                assert model is None
                continue
            assert model is not None

            def val(lit):
                return model[abs(lit)] ^ (lit < 0)

            assert all(val(u) for u in units)
            for clause in clauses:
                assert any(val(l) for l in clause)
            for lits, bound, guard in cards:
                if guard is not None and not val(guard):
                    continue
                assert sum(val(l) for l in lits) >= bound


class TestMinimizeBoundAssumptions:
    def _cardinality_sweep_solver(self, n, at_least):
        solver = SATSolver(0)
        xs = solver.new_vars(n)
        solver.add_cardinality(xs, at_least)
        return solver, xs

    @pytest.mark.parametrize("strategy", ["binary", "linear"])
    def test_agrees_with_rebuild(self, strategy):
        n, at_least = 7, 4
        solver, xs = self._cardinality_sweep_solver(n, at_least)

        def encode_bound(t):
            guard = solver.new_var()
            solver.add_at_most(xs, t, guard=guard)
            return guard

        def decode(model):
            return sum(model[v] for v in xs)

        incremental = minimize_bound_assumptions(
            solver, encode_bound, decode, 0, n, strategy=strategy
        )

        def rebuild_feasible(t):
            fresh = SATSolver(0)
            ys = fresh.new_vars(n)
            fresh.add_cardinality(ys, at_least)
            fresh.add_at_most(ys, t)
            model = fresh.solve()
            return None if model is None else sum(model[v] for v in ys)

        rebuild = minimize_bound(rebuild_feasible, 0, n, strategy=strategy)
        assert incremental is not None and rebuild is not None
        assert incremental[0] == rebuild[0] == at_least
        assert incremental[1] == at_least

    def test_all_infeasible_returns_none(self):
        solver, xs = self._cardinality_sweep_solver(4, 3)

        def encode_bound(t):
            guard = solver.new_var()
            solver.add_at_most(xs, t, guard=guard)
            return guard

        found = minimize_bound_assumptions(
            solver, encode_bound, lambda m: m, 0, 2
        )
        assert found is None
        # The solver itself is not poisoned: without guards it is SAT.
        assert solver.solve() is not None

    def test_guard_reuse_across_repeated_bounds(self):
        solver, xs = self._cardinality_sweep_solver(5, 2)
        created = []

        def encode_bound(t):
            guard = solver.new_var()
            created.append(t)
            solver.add_at_most(xs, t, guard=guard)
            return guard

        def decode(model):
            return sum(model[v] for v in xs)

        minimize_bound_assumptions(solver, encode_bound, decode, 0, 5)
        assert len(created) == len(set(created)), "bounds must be encoded once"

    def test_time_limit_expires(self):
        solver, xs = self._cardinality_sweep_solver(6, 3)

        def encode_bound(t):
            guard = solver.new_var()
            solver.add_at_most(xs, t, guard=guard)
            return guard

        with pytest.raises(ResourceLimitError):
            minimize_bound_assumptions(
                solver, encode_bound, lambda m: m, 0, 6, time_limit=0.0
            )
