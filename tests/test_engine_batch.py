"""Property tests: the QueryEngine batch primitives against per-point oracles.

The exactness contract of the batch layer, verified here across
continuous and discrete datasets, every metric, every odd k, and
datasets with multiplicities:

* on **integer-valued** data (the paper's exact-tie constructions,
  binarized data, digit images) every batched method agrees *bit for
  bit* with the per-point oracle — the l2/Hamming Gram kernels only
  produce exactly representable integers there;
* on **general real** data the surrogates agree up to floating-point
  roundoff and the classifications (which is what the semantics are
  about) agree outright.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.knn import Dataset, KNNClassifier, QueryEngine
from repro.metrics import get_metric

from .helpers import random_continuous_dataset, random_discrete_dataset

CONTINUOUS_METRICS = ["l1", "l2", "lp:3", "linf"]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _engine_case(seed: int, metric: str, *, q: int = 12, integer: bool = False):
    rng = _rng(seed)
    n = int(rng.integers(1, 7))
    if metric == "hamming":
        data = random_discrete_dataset(rng, n, int(rng.integers(1, 7)), int(rng.integers(1, 7)))
        queries = rng.integers(0, 2, size=(q, n)).astype(float)
    else:
        data = random_continuous_dataset(
            rng, n, int(rng.integers(1, 7)), int(rng.integers(1, 7)), integer=integer
        )
        queries = (
            rng.integers(-4, 5, size=(q, n)).astype(float)
            if integer
            else rng.normal(size=(q, n))
        )
    return data, queries


def _oracle_powers(m, data, x):
    return np.concatenate([m.powers_to(data.positives, x), m.powers_to(data.negatives, x)])


class TestMatrixPrimitives:
    @pytest.mark.parametrize("metric", CONTINUOUS_METRICS + ["hamming"])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_powers_matrix_exact_on_integer_data(self, metric, seed):
        data, queries = _engine_case(seed, metric, integer=True)
        engine = QueryEngine(data, metric)
        m = get_metric(metric)
        matrix = engine.powers_matrix(queries)
        assert matrix.shape == (queries.shape[0], len(data))
        for i, x in enumerate(queries):
            np.testing.assert_array_equal(matrix[i], _oracle_powers(m, data, x))

    @pytest.mark.parametrize("metric", CONTINUOUS_METRICS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_powers_matrix_close_on_real_data(self, metric, seed):
        data, queries = _engine_case(seed, metric)
        engine = QueryEngine(data, metric)
        m = get_metric(metric)
        matrix = engine.powers_matrix(queries)
        for i, x in enumerate(queries):
            np.testing.assert_allclose(
                matrix[i], _oracle_powers(m, data, x), rtol=1e-9, atol=1e-9
            )

    @pytest.mark.parametrize("metric", CONTINUOUS_METRICS + ["hamming"])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_distances_matrix_matches_distances_to(self, metric, seed):
        data, queries = _engine_case(seed, metric, integer=True)
        m = get_metric(metric)
        stacked = np.vstack([data.positives, data.negatives])
        matrix = m.distances_matrix(queries, stacked)
        for i, x in enumerate(queries):
            np.testing.assert_array_equal(matrix[i], m.distances_to(stacked, x))

    def test_pairwise_is_loop_free_alias(self):
        # pairwise must route through the vectorized matrix primitive.
        m = get_metric("l2")
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        np.testing.assert_array_equal(m.pairwise(a, b), m.distances_matrix(a, b))

    def test_empty_sides(self):
        data = Dataset([[0.0, 1.0], [1.0, 0.0]], np.empty((0, 2)))
        engine = QueryEngine(data, "l2")
        matrix = engine.powers_matrix([[0.5, 0.5]])
        assert matrix.shape == (1, 2)
        r_pos, r_neg = engine.radii_batch([[0.5, 0.5]], 1)
        assert np.isfinite(r_pos[0]) and np.isinf(r_neg[0])


class TestBatchAgainstOracles:
    @pytest.mark.parametrize("metric", CONTINUOUS_METRICS)
    @pytest.mark.parametrize("k", [1, 3])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_continuous_classify_and_margin(self, metric, k, seed):
        data, queries = _engine_case(seed, metric)
        if len(data) < k:
            return
        clf = KNNClassifier(data, k=k, metric=metric)
        labels = clf.classify_batch(queries)
        margins = clf.margins_batch(queries)
        for i, x in enumerate(queries):
            assert labels[i] == clf.classify(x)
            np.testing.assert_allclose(margins[i], clf.margin(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("metric", CONTINUOUS_METRICS)
    @pytest.mark.parametrize("k", [1, 3])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_integer_classify_and_margin_exact(self, metric, k, seed):
        data, queries = _engine_case(seed, metric, integer=True)
        if len(data) < k:
            return
        clf = KNNClassifier(data, k=k, metric=metric)
        labels = clf.classify_batch(queries)
        margins = clf.margins_batch(queries)
        for i, x in enumerate(queries):
            assert labels[i] == clf.classify(x)
            assert margins[i] == clf.margin(x)

    @pytest.mark.parametrize("k", [1, 3, 5])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_discrete_classify_and_margin(self, k, seed):
        data, queries = _engine_case(seed, "hamming")
        if len(data) < k:
            return
        clf = KNNClassifier(data, k=k, metric="hamming")
        labels = clf.classify_batch(queries)
        margins = clf.margins_batch(queries)
        for i, x in enumerate(queries):
            assert labels[i] == clf.classify(x)
            assert margins[i] == clf.margin(x)

    @pytest.mark.parametrize("k", [1, 3, 5])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_radii_batch_with_multiplicities(self, k, seed):
        # Integer coordinates so exact ties occur and the two kth-element
        # code paths (stable sort + cumsum vs scalar scan) must agree
        # bit for bit, multiplicities included.
        rng = _rng(seed)
        n = int(rng.integers(1, 5))
        pos = rng.integers(-3, 4, size=(int(rng.integers(1, 5)), n)).astype(float)
        neg = rng.integers(-3, 4, size=(int(rng.integers(1, 5)), n)).astype(float)
        data = Dataset(
            pos,
            neg,
            positive_multiplicities=rng.integers(1, 4, size=pos.shape[0]),
            negative_multiplicities=rng.integers(1, 4, size=neg.shape[0]),
        )
        if len(data) < k:
            return
        engine = QueryEngine(data, "l2")
        queries = rng.integers(-3, 4, size=(10, n)).astype(float)
        r_pos, r_neg = engine.radii_batch(queries, k)
        for i, x in enumerate(queries):
            expected = engine.radii(x, k)
            assert (r_pos[i], r_neg[i]) == expected
            # And the multiplicity-expanded dataset gives the same radii.
            flat = QueryEngine(data.expanded(), "l2")
            assert flat.radii(x, k) == expected

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_margin_infinite_cases(self, seed):
        rng = _rng(seed)
        pos = rng.normal(size=(3, 2))
        data = Dataset(pos, np.empty((0, 2)))
        engine = QueryEngine(data, "l2")
        queries = rng.normal(size=(4, 2))
        # No negatives: margin is +inf, label always 1.
        assert np.all(np.isinf(engine.margins_batch(queries, 3)))
        assert np.all(engine.margins_batch(queries, 3) > 0)
        assert np.all(engine.classify_batch(queries, 3) == 1)
        # k exceeding the dataset size is rejected, matching the seed
        # classifier's guard (both-infinite radii are unreachable for
        # any valid k).
        with pytest.raises(ValidationError):
            engine.radii_batch(queries, 7)
        with pytest.raises(ValidationError):
            engine.classify(queries[0], 5)


class TestEngineCacheAndSharing:
    def test_cache_hits_on_repeated_queries(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [[3.0, 3.0]])
        engine = QueryEngine(data, "l2")
        x = [0.2, 0.4]
        engine.classify(x, 1)
        engine.margin(x, 1)
        engine.radii(x, 1)
        info = engine.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_cache_eviction_respects_size(self):
        data = Dataset([[0.0]], [[1.0]])
        engine = QueryEngine(data, "l2", cache_size=2)
        for v in (0.1, 0.2, 0.3, 0.4):
            engine.classify([v], 1)
        assert engine.cache_info()["size"] == 2

    def test_classifier_shares_engine(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [[3.0, 3.0]])
        engine = QueryEngine(data, "l2")
        clf1 = KNNClassifier(data, k=1, engine=engine)
        clf3 = KNNClassifier(data, k=3, engine=engine)
        assert clf1.engine is engine and clf3.engine is engine
        x = [0.5, 0.5]
        clf1.classify(x)
        clf3.classify(x)  # same distance vector, different k
        assert engine.cache_info()["hits"] == 1

    def test_mismatched_engine_rejected(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [[3.0, 3.0]])
        other = Dataset([[9.0, 9.0]], [[8.0, 8.0]])
        engine = QueryEngine(data, "l2")
        with pytest.raises(ValidationError):
            KNNClassifier(other, k=1, engine=engine)
        with pytest.raises(ValidationError):
            KNNClassifier(data, k=1, metric="l1", engine=engine)

    def test_cached_vectors_are_read_only(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], [[3.0, 3.0]])
        engine = QueryEngine(data, "l2")
        pos_d, _ = engine.powers([0.5, 0.5])
        with pytest.raises(ValueError):
            pos_d[0] = -1.0


class TestWarningSatellite:
    def test_continuous_metric_over_discrete_warns(self):
        data = Dataset([[0.0, 1.0]], [[1.0, 0.0]], discrete=True)
        with pytest.warns(UserWarning, match="continuous metric"):
            KNNClassifier(data, k=1, metric="l2")

    def test_default_discrete_metric_does_not_warn(self):
        data = Dataset([[0.0, 1.0]], [[1.0, 0.0]], discrete=True)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            KNNClassifier(data, k=1)
