"""Tests for the heuristic lp (p >= 3) counterfactual solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.counterfactual.lp_general import closest_counterfactual_lp_heuristic
from repro.exceptions import ValidationError
from repro.knn import Dataset, KNNClassifier

from .helpers import random_continuous_dataset


class TestLpHeuristic:
    def test_rejects_p_with_exact_pipeline(self, rng):
        data = random_continuous_dataset(rng, 2, 2, 2)
        with pytest.raises(ValidationError):
            closest_counterfactual_lp_heuristic(data, 1, 2, np.zeros(2))

    def test_two_point_line_p4(self):
        # In 1-D every lp metric coincides with |.|: the answer is the
        # midpoint geometry, so the heuristic has a known target.
        data = Dataset([[0.0]], [[4.0]])
        result = closest_counterfactual_lp_heuristic(data, 1, 4, np.array([1.0]))
        assert result.found
        assert result.distance == pytest.approx(1.0, rel=1e-3)

    def test_result_is_always_verified(self, rng):
        for _ in range(5):
            data = random_continuous_dataset(rng, 2, 3, 3)
            clf = KNNClassifier(data, k=1, metric="lp:3")
            x = rng.normal(size=2)
            result = closest_counterfactual_lp_heuristic(data, 1, 3, x)
            if result.found:
                assert clf.classify(result.y) != clf.classify(x)

    def test_one_class(self):
        data = Dataset([[0.0, 1.0]], [])
        result = closest_counterfactual_lp_heuristic(data, 1, 3, np.zeros(2))
        assert not result.found

    def test_upper_bounds_l2_comparable(self, rng):
        """Sanity: for points on a line, p=4 and p=2 optima coincide, so
        the heuristic should land near the l2 exact answer."""
        from repro.counterfactual import closest_counterfactual

        data = Dataset([[0.0, 0.0]], [[4.0, 0.0]])
        x = np.array([1.0, 0.0])
        exact_l2 = closest_counterfactual(data, 1, "l2", x)
        heur = closest_counterfactual_lp_heuristic(data, 1, 4, x)
        assert heur.found
        assert heur.distance <= exact_l2.distance * 1.05 + 1e-6
