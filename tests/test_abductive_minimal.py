"""Tests for minimal sufficient reasons (greedy, Proposition 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abductive import (
    check_sufficient_reason,
    is_minimal_sufficient_reason,
    minimal_sufficient_reason,
)
from repro.exceptions import ValidationError
from repro.knn import Dataset

from .helpers import random_continuous_dataset, random_discrete_dataset


class TestGreedy:
    def test_result_is_sufficient_and_minimal_hamming(self, rng):
        for _ in range(10):
            data = random_discrete_dataset(rng, 5, 3, 3)
            x = rng.integers(0, 2, size=5).astype(float)
            X = minimal_sufficient_reason(data, 1, "hamming", x)
            assert is_minimal_sufficient_reason(data, 1, "hamming", x, X)

    def test_result_is_sufficient_and_minimal_l2(self, rng):
        for k in (1, 3):
            data = random_continuous_dataset(rng, 4, 3, 3)
            x = rng.normal(size=4)
            X = minimal_sufficient_reason(data, k, "l2", x)
            assert is_minimal_sufficient_reason(data, k, "l2", x, X)

    def test_result_is_sufficient_and_minimal_l1_k1(self, rng):
        data = random_continuous_dataset(rng, 4, 3, 3)
        x = rng.normal(size=4)
        X = minimal_sufficient_reason(data, 1, "l1", x)
        assert is_minimal_sufficient_reason(data, 1, "l1", x, X)

    def test_start_must_be_sufficient(self):
        # Example 2 dataset: {0} is not sufficient.
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        with pytest.raises(ValidationError):
            minimal_sufficient_reason(data, 1, "hamming", np.zeros(3), start={0})

    def test_order_steers_which_minimal_reason(self):
        """Example 2: both {0,1} and {2} are minimal; order selects one."""
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        x = np.zeros(3)
        # Try removing component 2 first: forced to keep {0, 1}.
        X1 = minimal_sufficient_reason(data, 1, "hamming", x, order=[2, 0, 1])
        assert X1 == frozenset({0, 1})
        # Try removing 0 then 1 first: left with {2}.
        X2 = minimal_sufficient_reason(data, 1, "hamming", x, order=[0, 1, 2])
        assert X2 == frozenset({2})

    def test_order_must_cover_start(self, rng):
        data = random_discrete_dataset(rng, 3, 2, 2)
        with pytest.raises(ValidationError):
            minimal_sufficient_reason(
                data, 1, "hamming", np.zeros(3), order=[0, 1]
            )

    def test_shrinks_given_start(self, rng):
        data = random_discrete_dataset(rng, 5, 3, 3)
        x = rng.integers(0, 2, size=5).astype(float)
        X = minimal_sufficient_reason(data, 1, "hamming", x, start=range(5))
        assert X <= frozenset(range(5))
        assert check_sufficient_reason(data, 1, "hamming", x, X)


class TestIsMinimal:
    def test_non_sufficient_is_not_minimal(self):
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        assert not is_minimal_sufficient_reason(data, 1, "hamming", np.zeros(3), {0})

    def test_sufficient_but_not_minimal(self):
        positives = [[0, 1, 1], [1, 0, 1], [1, 1, 1]]
        negatives = [
            [a, b, c]
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if [a, b, c] not in positives
        ]
        data = Dataset(positives, negatives, discrete=True)
        # {0, 1, 2} is sufficient but contains {2}.
        assert not is_minimal_sufficient_reason(
            data, 1, "hamming", np.zeros(3), {0, 1, 2}
        )

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25)
    def test_greedy_output_accepted(self, seed):
        rng = np.random.default_rng(seed)
        data = random_discrete_dataset(rng, 4, 3, 3)
        x = rng.integers(0, 2, size=4).astype(float)
        X = minimal_sufficient_reason(data, 1, "hamming", x)
        assert is_minimal_sufficient_reason(data, 1, "hamming", x, X)
