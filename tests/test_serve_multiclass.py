"""Multiclass lineages through the full serving stack.

The serving contract the tentpole adds: a dataset registered with an
integer **label vector** (``{"points", "labels"}``) lives the same life
as a binary one — versioned ``@vN`` fingerprints, WAL-durable streaming
mutations, result-cache invalidation, cluster owner/replica lockstep —
while its queries gain ``vote`` (uniform/distance) and ``target_label``
parameters.  These tests drive that lifecycle over live HTTP, the
cluster topology, and a durability restore, and pin the structured 400
envelope for the new failure modes (wrong-arity label vectors, unknown
target labels, multiclass solves at k != 1).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.knn import MultiClassDataset, MultiClassEngine
from repro.serve import ExplanationService, dataset_fingerprint, serve_http
from repro.serve.cluster import ClusterService


def _post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def _http_error(url: str, body: dict) -> tuple[int, dict]:
    """POST and return (status, decoded error envelope) for a failure."""
    try:
        _post(url, body)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())
    raise AssertionError(f"expected an HTTP error for {body!r}")


@pytest.fixture
def data(rng):
    """A 3-class integer-grid dataset (tie-rich, exact on every kernel)."""
    points = rng.integers(0, 2, size=(12, 6)).astype(float)
    labels = rng.integers(0, 3, size=12)
    labels[:3] = np.arange(3)
    return MultiClassDataset(points, labels, discrete=True)


@pytest.fixture
def service(data):
    service = ExplanationService(cache_size=64)
    service.fp = service.add_dataset(data)
    return service


@pytest.fixture
def server(service):
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()


def test_http_multiclass_lineage_end_to_end(rng, data, server, service):
    """register → mixed batch → mutation flips a sentinel → @vN cache."""
    url = f"http://127.0.0.1:{server.port}"
    registered = _post(url + "/v2/datasets", {
        "points": data.points.tolist(),
        "labels": data.row_labels.tolist(),
        "discrete": True,
    })
    fp = registered["fingerprint"]
    assert registered["classes"] == [0, 1, 2]
    assert sum(registered["counts"].values()) == 12
    # The HTTP registration is bit-identical to the fixture's lineage.
    assert fp == service.fp

    x = rng.integers(0, 2, size=6).astype(float).tolist()
    engine = MultiClassEngine(data, "hamming")
    sentinel = int(engine.classify(np.asarray(x), 1))

    # One mixed batch: classification (both votes), minimum SR, CF.
    batch = _post(url + "/v2/explain", {
        "fingerprint": fp, "method": "classify",
        "instances": [x, x], "params": {"k": 3, "vote": "distance"},
    })
    labels = [r["result"]["label"] for r in batch["results"]]
    assert labels == [
        int(engine.classify(np.asarray(x), 3, vote="distance"))
    ] * 2
    sr = _post(url + "/v2/explain", {
        "fingerprint": fp, "method": "minimum_sr",
        "instances": [x], "params": {"k": 1, "solver": "sat"},
    })["results"][0]["result"]
    assert sr["label"] == sentinel and sr["size"] >= 0
    cf = _post(url + "/v2/explain", {
        "fingerprint": fp, "method": "counterfactual",
        "instances": [x],
        "params": {"k": 1, "target_label": (sentinel + 1) % 3},
    })["results"][0]["result"]
    assert cf["target_label"] == (sentinel + 1) % 3

    # Cache: the identical classify call is served from the result cache.
    again = _post(url + "/v2/explain", {
        "fingerprint": fp, "method": "classify",
        "instances": [x], "params": {"k": 3, "vote": "distance"},
    })["results"][0]
    assert again["cached"] is True

    # Mutation: pile copies of x into another class until the sentinel
    # query's 1-NN prediction flips — then the @vN bump must have
    # invalidated every cached answer of the old version.
    flip_to = (sentinel + 1) % 3
    mutated = _post(url + f"/v2/datasets/{fp}/points", {
        "points": [x], "labels": [flip_to], "multiplicities": [5],
    })
    assert mutated["version"] == 1
    assert mutated["counts"][str(flip_to)] == data.counts[flip_to] + 5
    assert mutated["invalidated"] >= 1
    flipped = _post(url + "/v2/explain", {
        "fingerprint": mutated["fingerprint"], "method": "classify",
        "instances": [x], "params": {"k": 1},
    })["results"][0]
    assert flipped["cached"] is False
    assert flipped["result"]["label"] == flip_to != sentinel
    # The bare fingerprint now routes to the mutated current version.
    with urllib.request.urlopen(url + f"/v2/datasets/{fp}") as response:
        described = json.load(response)
    assert described["kind"] == "multiclass"
    assert described["version"] == 1


def test_http_multiclass_validation_envelopes(server, service, rng):
    """Wrong-arity labels and unknown targets → structured 400s."""
    url = f"http://127.0.0.1:{server.port}"
    x = rng.integers(0, 2, size=6).astype(float).tolist()

    # Registration with mismatched label arity.
    status, envelope = _http_error(url + "/v2/datasets", {
        "points": [[0, 1], [1, 0], [1, 1]], "labels": [0, 1],
    })
    assert status == 400
    assert envelope["error"]["type"] == "ValidationError"
    assert "labels" in envelope["error"]["message"]

    # Mixing binary and multiclass registration shapes.
    status, envelope = _http_error(url + "/v2/datasets", {
        "points": [[0, 1]], "labels": [0], "positives": [[1, 1]],
    })
    assert status == 400 and envelope["error"]["type"] == "ValidationError"

    # Unknown target_label names the known classes in the message.
    status, envelope = _http_error(url + "/v2/explain", {
        "fingerprint": service.fp, "method": "counterfactual",
        "instances": [x], "params": {"k": 1, "target_label": 9},
    })
    assert status == 400
    assert envelope["error"]["type"] == "ValidationError"
    assert "unknown target_label 9" in envelope["error"]["message"]
    assert "[0, 1, 2]" in envelope["error"]["message"]

    # Multiclass solves outside the paper's k = 1 merge reduction.
    status, envelope = _http_error(url + "/v2/explain", {
        "fingerprint": service.fp, "method": "minimum_sr",
        "instances": [x], "params": {"k": 3},
    })
    assert status == 400 and "k=1" in envelope["error"]["message"]

    # Unknown vote mode.
    status, envelope = _http_error(url + "/v2/explain", {
        "fingerprint": service.fp, "method": "classify",
        "instances": [x], "params": {"k": 3, "vote": "plurality"},
    })
    assert status == 400 and envelope["error"]["type"] == "ValidationError"

    # A mutation that would leave fewer than two classes is rejected
    # in-band with 400 and must not bump the version.
    two = _post(url + "/v2/datasets", {
        "points": [[0, 1], [1, 0], [1, 1]], "labels": [0, 0, 1],
    })
    try:
        request = urllib.request.Request(
            url + f"/v2/datasets/{two['fingerprint']}/points",
            data=json.dumps({"points": [[1, 1]], "labels": [1]}).encode(),
            headers={"Content-Type": "application/json"},
            method="DELETE",
        )
        urllib.request.urlopen(request)
        raise AssertionError("dropping the last class must be rejected")
    except urllib.error.HTTPError as err:
        assert err.code == 400
        assert json.loads(err.read().decode())["error"]["type"] == "ValidationError"
    assert service.describe(two["fingerprint"])["version"] == 0


def test_multiclass_cluster_lockstep(rng, data):
    """Owner and replicas answer and mutate a multiclass lineage in lockstep."""
    single = ExplanationService(cache_size=0)
    fp = single.add_dataset(data)
    x = rng.integers(0, 2, size=6).astype(float)
    with ClusterService(workers=2, replicas=2, cache_size=16) as cluster:
        assert cluster.add_dataset(data) == fp
        assert cluster.describe(fp) == single.describe(fp)
        for params in ({"k": 1}, {"k": 3, "vote": "distance"}):
            one = single.explain(fp, "classify", [x], dict(params))[0]["result"]
            many = cluster.explain(fp, "classify", [x], dict(params))[0]["result"]
            assert many == one
        # Per-class radii dicts agree replica-for-replica.
        mine = cluster.explain(fp, "radii", [x], {"k": 1})[0]["result"]
        theirs = single.explain(fp, "radii", [x], {"k": 1})[0]["result"]
        assert mine == theirs and set(mine["r_pos"]) == {"0", "1", "2"}
        # A mutation lands on every replica: same new fingerprint, same
        # counts, and the folded dataset matches the single-process one.
        batch = rng.integers(0, 2, size=(2, 6)).astype(float)
        out_single = single.add_points(fp, batch, [0, 2])
        out_cluster = cluster.add_points(fp, batch, [0, 2])
        assert out_cluster["fingerprint"] == out_single["fingerprint"]
        assert out_cluster["counts"] == out_single["counts"]
        after_single = single.explain(fp, "classify", [x], {"k": 3})[0]["result"]
        after_cluster = cluster.explain(fp, "classify", [x], {"k": 3})[0]["result"]
        assert after_cluster == after_single
        # Targeted counterfactual served by whichever worker owns the
        # shard (the payload's label is the k = 1 prediction).
        label = int(single.explain(fp, "classify", [x], {"k": 1})[0]["result"]["label"])
        target = (label + 1) % 3
        cf = cluster.explain(
            fp, "counterfactual", [x], {"k": 1, "target_label": target}
        )[0]["result"]
        assert cf["label"] == label and cf["target_label"] == target


def test_multiclass_durable_restore(rng, data, tmp_path):
    """register → mutate ×2 → crash → restore: bit-identical lineage."""
    service = ExplanationService(state_dir=tmp_path, snapshot_every=1, cache_size=0)
    fp = service.add_dataset(data)
    x = rng.integers(0, 2, size=6).astype(float)
    folded = data
    for step in range(2):
        batch = rng.integers(0, 2, size=(2, 6)).astype(float)
        labels = rng.integers(0, 3, size=2)
        out = service.add_points(fp, batch, labels)
        folded = folded.with_added(batch, labels)
        assert out["version"] == step + 1
    before = service.explain(fp, "classify", [x], {"k": 3, "vote": "distance"})
    service.close()

    revived = ExplanationService(state_dir=tmp_path, cache_size=0)
    assert revived.describe(fp)["version"] == 2
    assert revived.describe(fp)["kind"] == "multiclass"
    assert dataset_fingerprint(revived.dataset(fp)) == dataset_fingerprint(folded)
    after = revived.explain(fp, "classify", [x], {"k": 3, "vote": "distance"})
    assert after[0]["result"] == before[0]["result"]
    # The restored lineage keeps mutating: version numbering continues.
    out = revived.add_points(fp, [x.tolist()], [1])
    assert out["version"] == 3
    revived.close()
