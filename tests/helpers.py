"""Test-only helpers: random instance generators and brute-force oracles."""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro.knn import Dataset, KNNClassifier


def random_discrete_dataset(
    rng: np.random.Generator, n: int, m_pos: int, m_neg: int
) -> Dataset:
    """Random boolean dataset; rows may repeat across classes."""
    pos = rng.integers(0, 2, size=(m_pos, n)).astype(float)
    neg = rng.integers(0, 2, size=(m_neg, n)).astype(float)
    return Dataset(pos, neg, discrete=True)


def random_continuous_dataset(
    rng: np.random.Generator, n: int, m_pos: int, m_neg: int, *, integer: bool = False
) -> Dataset:
    if integer:
        pos = rng.integers(-4, 5, size=(m_pos, n)).astype(float)
        neg = rng.integers(-4, 5, size=(m_neg, n)).astype(float)
    else:
        pos = rng.normal(size=(m_pos, n))
        neg = rng.normal(size=(m_neg, n))
    return Dataset(pos, neg)


def brute_force_sufficient_reason_discrete(
    clf: KNNClassifier, x: np.ndarray, X: set[int]
) -> bool:
    """Exhaustively check whether X is a sufficient reason over {0,1}^n."""
    n = clf.dataset.dimension
    free = [i for i in range(n) if i not in X]
    base = clf.classify(x)
    y = np.array(x, dtype=float)
    for bits in product([0.0, 1.0], repeat=len(free)):
        y[free] = bits
        if clf.classify(y) != base:
            return False
    return True


def brute_force_min_sufficient_reason_discrete(
    clf: KNNClassifier, x: np.ndarray
) -> int:
    """Cardinality of a minimum sufficient reason, by subset enumeration."""
    n = clf.dataset.dimension
    for size in range(n + 1):
        for X in combinations(range(n), size):
            if brute_force_sufficient_reason_discrete(clf, x, set(X)):
                return size
    return n  # pragma: no cover - the full set is always sufficient


def brute_force_closest_counterfactual_discrete(
    clf: KNNClassifier, x: np.ndarray
) -> tuple[np.ndarray | None, float]:
    """Closest Hamming counterfactual by exhaustive hypercube search."""
    n = clf.dataset.dimension
    base = clf.classify(x)
    best, best_d = None, np.inf
    for bits in product([0.0, 1.0], repeat=n):
        y = np.array(bits)
        d = float(np.abs(y - x).sum())
        if d < best_d and clf.classify(y) != base:
            best, best_d = y, d
    return best, best_d
