"""Docstring-coverage checker for the CI lint job (stdlib-only).

An ``interrogate --fail-under``-style gate without the dependency: walk
every ``*.py`` file under the given paths, count the definitions that
*should* carry a docstring — modules, public classes, and public
functions/methods — and fail when the covered fraction drops below
``--fail-under``.

What counts as public (and therefore needs a docstring):

* every module;
* every class whose name does not start with ``_``;
* every function or method whose name does not start with ``_``
  (dunders other than ``__init__`` are exempt; ``__init__`` itself is
  exempt too — its parameters belong in the class docstring, matching
  the numpydoc convention this repo uses);
* nested ``def``s (closures) are exempt: they are implementation detail.

Usage::

    python tools/check_docstrings.py --fail-under 95 src/repro

The floor is a conservative ratchet: start just below the measured
value, raise it as coverage improves, never lower it.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def _is_public(name: str) -> bool:
    """Whether a definition with *name* is held to the docstring standard."""
    return not name.startswith("_")


def iter_definitions(tree: ast.Module, module_name: str):
    """Yield ``(qualified_name, node)`` for every definition that needs a docstring."""
    yield module_name, tree
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            yield f"{module_name}:{node.name}", node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(child.name):
                        yield f"{module_name}:{node.name}.{child.name}", child
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only module-level functions here: methods are handled above,
            # and anything deeper is a closure (exempt).
            if node.col_offset == 0 and _is_public(node.name):
                yield f"{module_name}:{node.name}", node


def audit_file(path: Path) -> tuple[list[str], int]:
    """``(missing qualified names, total definitions)`` for one file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    total = 0
    for name, node in iter_definitions(tree, str(path)):
        total += 1
        if ast.get_docstring(node) is None:
            missing.append(name)
    return missing, total


def audit(paths: list[Path]) -> tuple[list[str], int]:
    """Aggregate :func:`audit_file` over files and directories."""
    missing: list[str] = []
    total = 0
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            file_missing, file_total = audit_file(file)
            missing.extend(file_missing)
            total += file_total
    return missing, total


def main(argv=None) -> int:
    """CLI entry: print a coverage report, exit 1 below the floor."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--fail-under", type=float, default=95.0, metavar="PCT",
        help="minimum covered percentage (default 95)",
    )
    parser.add_argument(
        "--list-missing", action="store_true",
        help="print every definition lacking a docstring",
    )
    args = parser.parse_args(argv)
    missing, total = audit(args.paths)
    covered = total - len(missing)
    percent = 100.0 * covered / total if total else 100.0
    print(
        f"docstring coverage: {covered}/{total} public definitions "
        f"({percent:.1f}%, floor {args.fail_under:.1f}%)"
    )
    if args.list_missing or percent < args.fail_under:
        for name in missing:
            print(f"  missing: {name}")
    if percent < args.fail_under:
        print(
            f"FAIL: docstring coverage {percent:.1f}% is below the "
            f"--fail-under floor of {args.fail_under:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
