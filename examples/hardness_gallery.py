#!/usr/bin/env python3
"""Tour of the paper's hardness reductions on concrete instances.

Walks one instance through each reduction chain, solving both sides
exactly and printing the correspondence:

* Theorem 1 — Vertex Cover == Minimum Sufficient Reason (discrete);
* Theorem 4 — half-value knapsack == l1 counterfactual within radius;
* Theorems 6 + Prop. 5 — Vertex Cover -> BMCF -> Hamming counterfactual;
* Theorem 3 — k-clique == l2 counterfactual within the critical radius.

Run:  python examples/hardness_gallery.py
"""

from __future__ import annotations

import networkx as nx
from repro import exists_counterfactual, minimum_sufficient_reason
from repro.reductions import bmcf, clique, knapsack, oracles, vertex_cover


def theorem1() -> None:
    print("=" * 70)
    print("Theorem 1: Vertex Cover -> Minimum Sufficient Reason ({0,1}, Hamming)")
    g = nx.cycle_graph(5)
    tau = oracles.minimum_vertex_cover_size(g)
    print(f"  graph: 5-cycle, minimum vertex cover = {tau}")
    instance = vertex_cover.vertex_cover_to_msr_discrete(g, budget=tau)
    result = minimum_sufficient_reason(instance.dataset, 1, "hamming", instance.x)
    print(f"  minimum sufficient reason size = {result.size} (features {sorted(result.X)})")
    print(f"  the SR is a vertex cover: "
          f"{vertex_cover.sufficient_reason_is_vertex_cover(g, result.X)}")


def theorem4() -> None:
    print("=" * 70)
    print("Theorem 4: half-value knapsack -> counterfactual (R, l1)")
    weights, values, capacity = [3, 4, 2, 3], [5, 6, 3, 4], 6
    answer = oracles.half_value_knapsack_exists(weights, values, capacity)
    print(f"  items (w, v): {list(zip(weights, values))}, capacity {capacity}")
    print(f"  half of the total value fits: {answer}")
    instance = knapsack.knapsack_to_cf_l1(weights, values, capacity)
    cf = exists_counterfactual(instance.dataset, 1, "l1", instance.x, instance.radius)
    print(f"  counterfactual within radius {instance.radius}: {cf}  (must match)")


def theorem6() -> None:
    print("=" * 70)
    print("Prop. 5 + Theorem 6: Vertex Cover -> BMCF -> counterfactual (Hamming)")
    g = nx.path_graph(4)
    for budget in (1, 2):
        has_cover = oracles.has_vertex_cover(g, budget)
        bm = bmcf.vertex_cover_to_bmcf(g, budget)
        cf = bmcf.bmcf_to_cf_hamming(bm)
        got = exists_counterfactual(cf.dataset, cf.k, "hamming", cf.x, cf.radius)
        print(f"  P4 path graph, cover budget {budget}: cover exists = {has_cover}, "
              f"counterfactual within {int(cf.radius)} flips = {got}")


def theorem3() -> None:
    print("=" * 70)
    print("Theorem 3: k-clique in a regular graph -> counterfactual (R, l2)")
    for name, g in [("K4 (has triangles)", nx.complete_graph(4)),
                    ("C5 (triangle-free)", nx.cycle_graph(5))]:
        k = 3
        has = oracles.has_k_clique(g, k)
        instance = clique.clique_to_cf_l2(g, k)
        got = exists_counterfactual(
            instance.dataset, instance.k, "l2", instance.x, instance.radius + 1e-9
        )
        print(f"  {name}: {k}-clique = {has}, "
              f"counterfactual within R = {instance.radius:.0f} for "
              f"{instance.k}-NN = {got}")


def main() -> None:
    theorem1()
    theorem4()
    theorem6()
    theorem3()
    print("=" * 70)


if __name__ == "__main__":
    main()
