#!/usr/bin/env python3
"""Quickstart: explain a k-NN classification three ways.

Builds a small loan-approval-style dataset, classifies an applicant,
and produces (a) a minimal sufficient reason, (b) a minimum sufficient
reason, and (c) a closest counterfactual — the three explanation kinds
studied in the paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Dataset,
    KNNClassifier,
    closest_counterfactual,
    minimal_sufficient_reason,
    minimum_sufficient_reason,
)

FEATURES = ["stable_income", "low_debt", "long_history", "owns_home", "no_defaults"]


def main() -> None:
    # Historical decisions: rows are applicants, features are booleans.
    approved = [
        [1, 1, 1, 0, 1],
        [1, 1, 0, 1, 1],
        [1, 0, 1, 1, 1],
        [1, 1, 1, 1, 0],
    ]
    rejected = [
        [0, 0, 1, 0, 0],
        [0, 1, 0, 0, 1],
        [1, 0, 0, 0, 0],
        [0, 0, 0, 1, 1],
        [0, 1, 1, 0, 0],
    ]
    data = Dataset(approved, rejected, discrete=True)
    clf = KNNClassifier(data, k=1, metric="hamming")

    applicant = np.array([1.0, 1.0, 0.0, 0.0, 1.0])
    label = clf.classify(applicant)
    print("applicant:", {f: int(v) for f, v in zip(FEATURES, applicant)})
    print("decision :", "APPROVED" if label else "REJECTED")
    print()

    # (a) A minimal sufficient reason: a feature set that locks in the
    # decision no matter how the other features change.
    minimal = minimal_sufficient_reason(data, 1, "hamming", applicant)
    print("minimal sufficient reason:")
    for i in sorted(minimal):
        print(f"  {FEATURES[i]} = {int(applicant[i])}")
    print()

    # (b) The smallest possible sufficient reason (NP-hard in general;
    # solved exactly by the MILP pipeline for k = 1).
    minimum = minimum_sufficient_reason(data, 1, "hamming", applicant)
    print(f"minimum sufficient reason ({minimum.size} feature(s), via {minimum.method}):")
    for i in sorted(minimum.X):
        print(f"  {FEATURES[i]} = {int(applicant[i])}")
    print()

    # (c) The closest counterfactual: the fewest feature flips that would
    # change the decision.
    result = closest_counterfactual(data, 1, "hamming", applicant)
    flipped = sorted(int(i) for i in np.flatnonzero(result.y != applicant))
    print(f"closest counterfactual ({int(result.distance)} flip(s)):")
    for i in flipped:
        print(f"  {FEATURES[i]}: {int(applicant[i])} -> {int(result.y[i])}")
    other = clf.classify(result.y)
    print(f"counterfactual decision: {'APPROVED' if other else 'REJECTED'}")


if __name__ == "__main__":
    main()
