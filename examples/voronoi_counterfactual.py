#!/usr/bin/env python3
"""Figure 2 reproduction: minimum-distance l2 counterfactuals in R^2.

The paper's Figure 2 shows a 2-D dataset under the l2 metric (k = 1):
decision regions are Voronoi-like cells, and the optimal counterfactual
of a query is its projection onto the nearest opposite-label cell
boundary.  This script renders the decision regions of a random 2-D
dataset as an ASCII map, marks a query point and its computed closest
counterfactual, and verifies the projection geometry numerically.

Run:  python examples/voronoi_counterfactual.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import KNNClassifier, closest_counterfactual
from repro.datasets import gaussian_blobs


def render_regions(clf, lo, hi, width, height, markers):
    """ASCII map: '+' cells classify positive, '.' negative."""
    rows = []
    for r in range(height):
        y = hi - (r + 0.5) * (hi - lo) / height
        row = []
        for c in range(width):
            x = lo + (c + 0.5) * (hi - lo) / width
            char = "+" if clf.classify([x, y]) else "."
            for mx, my, mchar in markers:
                if abs(mx - x) < (hi - lo) / width / 2 and abs(my - y) < (hi - lo) / height / 2:
                    char = mchar
            row.append(char)
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--points-per-class", type=int, default=6)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    data = gaussian_blobs(rng, 2, args.points_per_class, separation=3.0, scale=1.2)
    clf = KNNClassifier(data, k=1, metric="l2")

    x = np.array([1.2, 0.3])
    label = clf.classify(x)
    result = closest_counterfactual(data, 1, "l2", x)
    y = result.y

    print(f"query x = {x.round(2).tolist()} classified {label}")
    print(
        f"closest counterfactual y = {y.round(3).tolist()} at l2 distance "
        f"{result.distance:.3f} (infimum {result.infimum:.3f})"
    )
    print(f"counterfactual label: {clf.classify(y)}")
    print()

    markers = [(x[0], x[1], "X"), (y[0], y[1], "O")]
    markers += [(p[0], p[1], "P") for p in data.positives]
    markers += [(p[0], p[1], "N") for p in data.negatives]
    print("decision map ('+' positive region, '.' negative; X=query, O=counterfactual):")
    print(render_regions(clf, -4.5, 4.5, 72, 30, markers))
    print()

    # Verify the geometry: no point strictly inside the infimum ball flips.
    flips_inside = 0
    for _ in range(4000):
        angle = rng.uniform(0, 2 * np.pi)
        radius = result.infimum * rng.uniform(0, 0.999)
        probe = x + radius * np.array([np.cos(angle), np.sin(angle)])
        if clf.classify(probe) != label:
            flips_inside += 1
    print(f"random probes strictly inside the infimum ball that flip: {flips_inside} (expect 0)")


if __name__ == "__main__":
    main()
