#!/usr/bin/env python3
"""Figures 3-4 reproduction: l2 bisectors are hyperplanes, l1 bisectors are not.

Section 5 of the paper rests on one geometric fact: under l2, the set of
points equidistant from two references is a hyperplane — so distance
comparisons are linear constraints and LP/QP machinery applies.  Under
l1 the equidistant set is a piecewise-linear region that can even have
2-D chunks.  This script samples both bisectors for a reference pair
in R^2, prints them as ASCII maps, and checks the l2 halfspace formula
``(a-c)^T x >= 1/2 (a-c)^T (a+c)`` against brute-force comparisons.

Run:  python examples/bisector_geometry.py
"""

from __future__ import annotations

import numpy as np

from repro.geometry import bisector_halfspace
from repro.metrics import get_metric


def bisector_map(metric_name, a, c, lo=-3.0, hi=3.0, width=66, height=30, tol=0.08):
    metric = get_metric(metric_name)
    rows = []
    for r in range(height):
        y = hi - (r + 0.5) * (hi - lo) / height
        row = []
        for col in range(width):
            x = lo + (col + 0.5) * (hi - lo) / width
            point = np.array([x, y])
            da = metric.distance(point, a)
            dc = metric.distance(point, c)
            if abs(da - dc) < tol:
                row.append("#")
            elif np.allclose(point, a, atol=0.1):
                row.append("A")
            elif np.allclose(point, c, atol=0.1):
                row.append("C")
            else:
                row.append("a" if da < dc else "c")
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    a = np.array([-1.0, -0.5])
    c = np.array([1.5, 1.0])

    print("l2 bisector ('#'): a straight line (Figure 3)")
    print(bisector_map("l2", a, c))
    print()
    print("l1 bisector ('#'): kinked, with thick segments (Figure 4)")
    print(bisector_map("l1", a, c))
    print()

    # Verify the halfspace formula on random points.
    rng = np.random.default_rng(0)
    h = bisector_halfspace(a, c)
    metric = get_metric("l2")
    mismatches = 0
    for _ in range(10_000):
        x = rng.uniform(-5, 5, size=2)
        closer_to_a = metric.distance(x, a) <= metric.distance(x, c)
        if h.contains(x) != closer_to_a:
            mismatches += 1
    print(f"l2 halfspace formula vs brute-force comparison over 10k points: "
          f"{mismatches} mismatches (expect 0)")


if __name__ == "__main__":
    main()
