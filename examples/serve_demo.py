#!/usr/bin/env python3
"""Serve demo: a mixed explanation workload through the service layer.

Starts an in-process :class:`repro.serve.ExplanationService` on a
synthetic boolean dataset, fires a mixed batch of Minimum-SR and
counterfactual requests (plus a classify warm-up wave), repeats part of
the workload to show the result cache at work, and prints cache
hit/miss and portfolio provenance statistics at the end.

The same service can be exposed over HTTP with ``repro-knn serve``;
this demo stays in-process so it runs anywhere, instantly.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import random_boolean_dataset
from repro.serve import ExplanationService

DIMENSION = 10
TRAIN_POINTS = 28
QUERIES = 6


def main() -> None:
    """Run the demo workload and print serving statistics."""
    rng = np.random.default_rng(7)
    data = random_boolean_dataset(rng, DIMENSION, TRAIN_POINTS)
    service = ExplanationService(cache_size=256)
    fingerprint = service.add_dataset(data)
    print(f"dataset: {data!r}")
    print(f"fingerprint: {fingerprint[:16]}...\n")

    queries = [
        rng.integers(0, 2, size=DIMENSION).astype(float) for _ in range(QUERIES)
    ]

    # Wave 1 — a classify wave: batchable, answered in one kernel call.
    labels = service.submit_many(
        [(fingerprint, "classify", x, {"k": 3}) for x in queries]
    )
    print("classify wave:", [r.payload["label"] for r in labels])

    # Wave 2 — a mixed solver batch: Minimum-SR (portfolio) and closest
    # counterfactual for every query, sharing one warm engine.
    mixed = []
    for x in queries:
        mixed.append(
            (fingerprint, "minimum_sr", x,
             {"k": 1, "solver": "portfolio", "budget": 5.0})
        )
        mixed.append(
            (fingerprint, "counterfactual", x, {"k": 1, "solver": "hamming-sat"})
        )
    responses = service.submit_many(mixed)
    print("\nmixed MSR + counterfactual batch:")
    for response in responses:
        req = response.request
        if req.method == "minimum_sr":
            prov = response.payload["provenance"]
            tried = "/".join(a["method"] for a in prov["attempts"])
            print(
                f"  minimum_sr      size={response.payload['size']} "
                f"winner={prov['winner']:<5} (raced {tried}) "
                f"cached={response.cached}"
            )
        else:
            print(
                f"  counterfactual  distance={response.payload['distance']:.0f} "
                f"method={response.payload['method']} "
                f"cached={response.cached}"
            )

    # Wave 3 — the same mixed workload again: everything is a cache hit,
    # and hits are bit-identical to the cold payloads above.
    repeated = service.submit_many(mixed)
    identical = all(
        hit.payload == cold.payload for hit, cold in zip(repeated, responses)
    )
    print(
        f"\nrepeat wave: {sum(r.cached for r in repeated)}/{len(repeated)} "
        f"served from cache, payloads identical to cold solves: {identical}"
    )

    stats = service.stats()
    cache = stats["cache"]
    total = cache["hits"] + cache["misses"]
    print("\nservice stats:")
    print(f"  requests        : {stats['requests']}")
    print(f"  batches flushed : {stats['batches']} "
          f"(largest {stats['largest_batch']})")
    print(f"  cache           : {cache['hits']} hits / {cache['misses']} misses "
          f"({cache['hits'] / total:.0%} hit rate, {cache['size']} resident)")
    winners = {}
    for response in responses:
        prov = response.payload.get("provenance")
        if prov:
            winners[prov["winner"]] = winners.get(prov["winner"], 0) + 1
    print(f"  portfolio wins  : {winners}")


if __name__ == "__main__":
    main()
