#!/usr/bin/env python3
"""Multi-label explanations via label merging (final remarks of the paper).

Trains a 1-NN on synthetic digits 3, 4 and 9, classifies a query digit,
and explains it with the merge trick: a sufficient reason for "this is
a 4" (vs everything else), an untargeted counterfactual ("what is the
smallest change making it NOT a 4"), and a targeted one ("make it a 9").

Run:  python examples/multiclass_digits.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import DigitImages, render_ascii
from repro.knn import MultiClass1NN


def main() -> None:
    rng = np.random.default_rng(5)
    side = 9
    train = DigitImages.generate(rng, digits=(3, 4, 9), count_per_digit=12, side=side)
    features = (train.flattened() >= 0.5).astype(float)
    clf = MultiClass1NN(features, train.labels, metric="hamming")

    query = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=side)
    x = (query.flattened()[0] >= 0.5).astype(float)
    label = clf.classify(x)
    print(f"query classified as digit {label}")
    print(render_ascii(x))
    print()

    X = clf.minimal_sufficient_reason(x)
    mask = np.zeros(side * side)
    mask[sorted(X)] = 1.0
    print(f"minimal sufficient reason: {len(X)} of {side * side} pixels "
          f"(marked '@'):")
    print(render_ascii(mask, charset=" @"))
    print()

    cf = clf.closest_counterfactual(x, method="hamming-milp")
    print(f"untargeted counterfactual: flip {int(cf.distance)} pixel(s) -> "
          f"digit {clf.classify(cf.y)}")
    print(render_ascii(np.abs(cf.y - x), charset=" @"))
    print()

    cf9 = clf.closest_counterfactual(x, target=9, method="hamming-milp")
    print(f"targeted counterfactual to digit 9: flip {int(cf9.distance)} pixel(s)")
    print(render_ascii(np.abs(cf9.y - x), charset=" @"))


if __name__ == "__main__":
    main()
