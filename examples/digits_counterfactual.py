#!/usr/bin/env python3
"""Figure 1 reproduction: a counterfactual for a digit image.

The paper's Figure 1 trains a 1-NN on binarized MNIST digits 4 and 9,
then shows a test "4", its nearest neighbor, the closest counterfactual
(classified 9 after flipping 13 pixels), that counterfactual's nearest
neighbor, and the difference maps.  This script does the same on the
offline synthetic digit generator and renders everything as ASCII art.

Run:  python examples/digits_counterfactual.py [--side 10] [--per-digit 15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import KNNClassifier, closest_counterfactual
from repro.datasets import DigitImages, render_ascii
from repro.neighbors import BruteForceIndex


def diff_map(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a - b)


def show(title: str, image: np.ndarray) -> None:
    print(f"--- {title} ---")
    print(render_ascii(image))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=10, help="image side length")
    parser.add_argument("--per-digit", type=int, default=15, help="training images per digit")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    train = DigitImages.generate(
        rng, digits=(4, 9), count_per_digit=args.per_digit, side=args.side
    )
    data = train.to_dataset(positive_digit=4, binarized=True)
    clf = KNNClassifier(data, k=1, metric="hamming")

    # A held-out test image of a 4, binarized like the training data.
    test = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=args.side)
    x = (test.flattened()[0] >= 0.5).astype(float)
    label = clf.classify(x)
    print(f"test image classified as: {'4' if label else '9'}")
    print()
    show("test image (a)", x)

    # Its nearest neighbor in the training set (the "data perspective").
    points, labels = data.all_points()
    index = BruteForceIndex(points, "hamming")
    _, nn_idx = index.nearest(x)
    show("nearest neighbor of (a), a training " + ("4" if labels[nn_idx] else "9"), points[nn_idx])

    # The closest counterfactual (the "feature perspective").
    result = closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")
    flips = int(result.distance)
    print(f"closest counterfactual flips {flips} of {x.size} pixels "
          f"({'4' if clf.classify(result.y) else '9'} after the change)")
    print()
    show("closest counterfactual (c)", result.y)

    _, cf_nn_idx = index.nearest(result.y)
    show(
        "nearest neighbor of (c), a training " + ("4" if labels[cf_nn_idx] else "9"),
        points[cf_nn_idx],
    )
    show("difference map (a) vs (c): the explanation", diff_map(x, result.y))
    show("difference map (a) vs its NN", diff_map(x, points[nn_idx]))
    show("difference map (c) vs its NN", diff_map(result.y, points[cf_nn_idx]))


if __name__ == "__main__":
    main()
